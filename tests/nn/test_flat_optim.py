"""Flat-buffer optimisers vs the per-parameter reference implementations.

The fused flat pass is purely elementwise, so it must match the old
per-parameter update loops **bit for bit** — these tests assert exact array
equality over randomised shapes, gradients and step counts, not approximate
closeness.  They also pin the plumbing the flat buffer depends on: parameter
views surviving state-dict loads and ``copy_from``, adoption of externally
reassigned parameters, the missing-gradient fallback, and the
single-reduction ``clip_grad_norm_``.
"""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor, clip_grad_norm, mse_loss
from repro.nn.layers import Parameter


def random_parameter_set(rng: np.random.Generator, dtype=np.float64):
    """A handful of parameters with assorted shapes (like a real network)."""
    shapes = [(3, 4), (4,), (4, 4), (4,), (4, 1), (1,), (2, 3, 2)]
    return [
        Parameter(rng.standard_normal(shape).astype(dtype, copy=False))
        for shape in shapes
    ]


def reference_adam_step(params, grads, m, v, step_count, lr, beta1, beta2, eps, wd):
    """The pre-flat-buffer Adam loop, verbatim."""
    bias_correction1 = 1.0 - beta1**step_count
    bias_correction2 = 1.0 - beta2**step_count
    for param, grad, mi, vi in zip(params, grads, m, v):
        if grad is None:
            continue
        if wd > 0.0:
            grad = grad + wd * param
        mi *= beta1
        mi += (1.0 - beta1) * grad
        vi *= beta2
        vi += (1.0 - beta2) * grad * grad
        m_hat = mi / bias_correction1
        v_hat = vi / bias_correction2
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)


def reference_sgd_step(params, grads, velocity, lr, momentum):
    """The pre-flat-buffer SGD loop, verbatim."""
    for param, grad, vel in zip(params, grads, velocity):
        if grad is None:
            continue
        if momentum > 0.0:
            vel *= momentum
            vel += grad
            update = vel
        else:
            update = grad
        param -= lr * update


class TestFlatAdamMatchesReference:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("weight_decay", [0.0, 0.1])
    def test_bit_identical_over_many_steps(self, seed, weight_decay):
        rng = np.random.default_rng(seed)
        params = random_parameter_set(rng)
        reference = [p.data.copy() for p in params]
        ref_m = [np.zeros_like(r) for r in reference]
        ref_v = [np.zeros_like(r) for r in reference]

        optimizer = Adam(params, lr=0.01, weight_decay=weight_decay)
        for step in range(1, 8):
            grads = [rng.standard_normal(p.data.shape) for p in params]
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            optimizer.step()
            reference_adam_step(
                reference, grads, ref_m, ref_v, step, 0.01, 0.9, 0.999, 1e-8, weight_decay
            )
            for param, expected in zip(params, reference):
                np.testing.assert_array_equal(param.data, expected)

    def test_float32_bit_identical(self):
        rng = np.random.default_rng(0)
        params = random_parameter_set(rng, dtype=np.float32)
        reference = [p.data.copy() for p in params]
        ref_m = [np.zeros_like(r) for r in reference]
        ref_v = [np.zeros_like(r) for r in reference]
        optimizer = Adam(params, lr=0.01)
        for step in range(1, 5):
            grads = [rng.standard_normal(p.data.shape).astype(np.float32) for p in params]
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            optimizer.step()
            reference_adam_step(
                reference, grads, ref_m, ref_v, step, 0.01, 0.9, 0.999, 1e-8, 0.0
            )
            for param, expected in zip(params, reference):
                assert param.data.dtype == np.float32
                np.testing.assert_array_equal(param.data, expected)


class TestFlatSGDMatchesReference:
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_bit_identical_over_many_steps(self, momentum):
        rng = np.random.default_rng(3)
        params = random_parameter_set(rng)
        reference = [p.data.copy() for p in params]
        velocity = [np.zeros_like(r) for r in reference]
        optimizer = SGD(params, lr=0.05, momentum=momentum)
        for _ in range(6):
            grads = [rng.standard_normal(p.data.shape) for p in params]
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            optimizer.step()
            reference_sgd_step(reference, grads, velocity, 0.05, momentum)
            for param, expected in zip(params, reference):
                np.testing.assert_array_equal(param.data, expected)


class TestMissingGradientFallback:
    def test_params_without_grads_are_skipped_and_moments_untouched(self):
        rng = np.random.default_rng(1)
        params = random_parameter_set(rng)
        optimizer = Adam(params, lr=0.01)
        before = [p.data.copy() for p in params]
        params[0].grad = rng.standard_normal(params[0].data.shape)
        # params[1:] have no gradient.
        optimizer.step()
        assert not np.array_equal(params[0].data, before[0])
        for param, untouched in zip(params[1:], before[1:]):
            np.testing.assert_array_equal(param.data, untouched)
        state = optimizer.state_dict()
        for i in range(1, len(params)):
            np.testing.assert_array_equal(
                state["first_moment"][str(i)], np.zeros_like(before[i])
            )

    def test_fallback_matches_reference_semantics(self):
        rng = np.random.default_rng(2)
        params = random_parameter_set(rng)
        reference = [p.data.copy() for p in params]
        ref_m = [np.zeros_like(r) for r in reference]
        ref_v = [np.zeros_like(r) for r in reference]
        optimizer = Adam(params, lr=0.01)
        for step in range(1, 5):
            grads = [
                rng.standard_normal(p.data.shape) if i % 2 == 0 else None
                for i, p in enumerate(params)
            ]
            for param, grad in zip(params, grads):
                param.grad = None if grad is None else grad.copy()
            optimizer.step()
            reference_adam_step(
                reference, grads, ref_m, ref_v, step, 0.01, 0.9, 0.999, 1e-8, 0.0
            )
            for param, expected in zip(params, reference):
                np.testing.assert_array_equal(param.data, expected)


class TestFlatClipGradNorm:
    def test_matches_reference_norm_and_clipping(self):
        rng = np.random.default_rng(4)
        params = random_parameter_set(rng)
        twins = [Parameter(p.data.copy()) for p in params]
        grads = [rng.standard_normal(p.data.shape) * 10.0 for p in params]
        for param, twin, grad in zip(params, twins, grads):
            param.grad = grad.copy()
            twin.grad = grad.copy()

        optimizer = Adam(params, lr=0.01)
        flat_norm = optimizer.clip_grad_norm_(1.0)
        reference_norm = clip_grad_norm(twins, 1.0)
        assert flat_norm == pytest.approx(reference_norm, rel=1e-12)

        optimizer.step()
        # Apply the reference clipped update to the twins and compare.
        reference = [t.data.copy() for t in twins]
        ref_m = [np.zeros_like(r) for r in reference]
        ref_v = [np.zeros_like(r) for r in reference]
        reference_adam_step(
            reference,
            [t.grad for t in twins],
            ref_m,
            ref_v,
            1,
            0.01,
            0.9,
            0.999,
            1e-8,
            0.0,
        )
        for param, expected in zip(params, reference):
            np.testing.assert_allclose(param.data, expected, rtol=1e-12, atol=1e-15)

    def test_small_gradients_are_left_unscaled(self):
        params = [Parameter(np.zeros(4))]
        params[0].grad = np.full(4, 0.1)
        optimizer = SGD(params, lr=0.1)
        norm = optimizer.clip_grad_norm_(10.0)
        assert norm == pytest.approx(np.sqrt(4 * 0.01))
        optimizer.step()
        np.testing.assert_allclose(params[0].data, np.full(4, -0.01))

    def test_no_gradients_returns_zero(self):
        optimizer = SGD([Parameter(np.zeros(2))], lr=0.1)
        assert optimizer.clip_grad_norm_(1.0) == 0.0


class TestFlatBufferPlumbing:
    def test_views_survive_module_load_state_dict(self):
        """In-place state loading keeps param.data aliased to the flat buffer."""
        model = Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = SGD(list(model.parameters()), lr=0.5)
        other = Linear(3, 2, rng=np.random.default_rng(9))
        model.load_state_dict(other.state_dict())

        x = Tensor(np.ones((4, 3)))
        loss = mse_loss(model(x), Tensor(np.zeros((4, 2))))
        loss.backward()
        before = model.weight.data.copy()
        optimizer.step()
        assert not np.array_equal(model.weight.data, before), (
            "optimizer step no longer reaches the module parameters"
        )

    def test_copy_from_keeps_views(self):
        model = Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = SGD(list(model.parameters()), lr=0.5)
        source = Linear(3, 2, rng=np.random.default_rng(9))
        model.copy_from(source)
        np.testing.assert_array_equal(model.weight.data, source.weight.data)
        model.weight.grad = np.ones_like(model.weight.data)
        model.bias.grad = np.ones_like(model.bias.data)
        optimizer.step()
        np.testing.assert_allclose(
            model.weight.data, source.weight.data - 0.5, rtol=0, atol=1e-15
        )

    def test_externally_reassigned_parameters_are_readopted(self):
        param = Parameter(np.zeros(3))
        optimizer = SGD([param], lr=1.0)
        # Simulate third-party code replacing the array object outright.
        param.data = np.array([1.0, 2.0, 3.0])
        param.grad = np.ones(3)
        optimizer.step()
        np.testing.assert_array_equal(param.data, np.array([0.0, 1.0, 2.0]))

    def test_state_dict_round_trip_continues_identically(self):
        rng = np.random.default_rng(5)
        params = random_parameter_set(rng)
        optimizer = Adam(params, lr=0.01)
        for _ in range(3):
            for param in params:
                param.grad = rng.standard_normal(param.data.shape)
            optimizer.step()
        state = optimizer.state_dict()

        twins = [Parameter(p.data.copy()) for p in params]
        restored = Adam(twins, lr=0.01)
        restored.load_state_dict(state)

        follow_up = [rng.standard_normal(p.data.shape) for p in params]
        for param, twin, grad in zip(params, twins, follow_up):
            param.grad = grad.copy()
            twin.grad = grad.copy()
        optimizer.step()
        restored.step()
        for param, twin in zip(params, twins):
            np.testing.assert_array_equal(param.data, twin.data)
