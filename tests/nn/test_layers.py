"""Unit and property-based tests for nn layers, including permutation invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    Parameter,
    ReLU,
    RowwiseFeedForward,
    Sequential,
    Tensor,
    build_mlp,
    scaled_dot_product_attention,
)


def rng():
    return np.random.default_rng(0)


class TestModuleInfrastructure:
    def test_parameters_are_registered(self):
        layer = Linear(3, 2, rng=rng())
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_module_parameters(self):
        model = Sequential(Linear(3, 4, rng=rng()), ReLU(), Linear(4, 2, rng=rng()))
        assert len(list(model.parameters())) == 4

    def test_state_dict_round_trip(self):
        model = Sequential(Linear(3, 4, rng=rng()), Linear(4, 2, rng=rng()))
        state = model.state_dict()
        clone = Sequential(Linear(3, 4, rng=np.random.default_rng(9)), Linear(4, 2, rng=np.random.default_rng(8)))
        clone.load_state_dict(state)
        x = Tensor(rng().normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_load_state_dict_rejects_missing_keys(self):
        model = Linear(3, 2, rng=rng())
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = Linear(3, 2, rng=rng())
        state = model.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_copy_from_hard(self):
        source = Linear(3, 2, rng=rng())
        target = Linear(3, 2, rng=np.random.default_rng(5))
        target.copy_from(source, tau=1.0)
        np.testing.assert_allclose(target.weight.data, source.weight.data)

    def test_copy_from_soft(self):
        source = Linear(2, 2, rng=rng())
        target = Linear(2, 2, rng=np.random.default_rng(5))
        original = target.weight.data.copy()
        target.copy_from(source, tau=0.5)
        np.testing.assert_allclose(
            target.weight.data, 0.5 * original + 0.5 * source.weight.data
        )

    def test_zero_grad_clears_all(self):
        model = Linear(3, 2, rng=rng())
        out = model(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=rng()), ReLU())
        model.eval()
        assert all(not m.training for m in model)
        model.train()
        assert all(m.training for m in model)


class TestLinearAndFeedForward:
    def test_linear_forward_matches_manual(self):
        layer = Linear(3, 2, rng=rng())
        x = rng().normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_linear_without_bias(self):
        layer = Linear(3, 2, bias=False, rng=rng())
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_rowwise_ff_applies_relu(self):
        layer = RowwiseFeedForward(3, 2, rng=rng())
        out = layer(Tensor(rng().normal(size=(6, 3))))
        assert (out.numpy() >= 0).all()

    def test_rowwise_ff_no_activation_can_be_negative(self):
        layer = RowwiseFeedForward(3, 2, activation=False, rng=rng())
        out = layer(Tensor(rng().normal(size=(200, 3))))
        assert (out.numpy() < 0).any()

    def test_rowwise_ff_rows_are_independent(self):
        layer = RowwiseFeedForward(3, 4, rng=rng())
        x = rng().normal(size=(5, 3))
        full = layer(Tensor(x)).numpy()
        single = layer(Tensor(x[2:3])).numpy()
        np.testing.assert_allclose(full[2:3], single)

    def test_build_mlp_shapes(self):
        model = build_mlp([5, 8, 3], rng=rng())
        out = model(Tensor(np.zeros((2, 5))))
        assert out.shape == (2, 3)


class TestAttention:
    def test_attention_output_shape(self):
        layer = MultiHeadSelfAttention(8, num_heads=2, rng=rng())
        out = layer(Tensor(rng().normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_embed_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, num_heads=3, rng=rng())

    def test_scaled_dot_product_attention_uniform_when_identical(self):
        values = np.eye(3)
        out = scaled_dot_product_attention(
            Tensor(np.ones((3, 4))), Tensor(np.ones((3, 4))), Tensor(values)
        )
        np.testing.assert_allclose(out.numpy(), np.full((3, 3), 1.0 / 3.0), atol=1e-12)

    def test_mask_excludes_padded_keys(self):
        q = rng().normal(size=(4, 6))
        layer_input = Tensor(q)
        mask = np.array([False, False, True, True])
        out_masked = scaled_dot_product_attention(layer_input, layer_input, layer_input, mask=mask)
        # Real rows must not depend on the padded rows' content.
        q2 = q.copy()
        q2[2:] = 123.0
        out_masked_2 = scaled_dot_product_attention(Tensor(q2), Tensor(q2), Tensor(q2), mask=mask)
        np.testing.assert_allclose(out_masked.numpy()[:2], out_masked_2.numpy()[:2], atol=1e-9)

    def test_gradients_flow_through_all_projections(self):
        layer = MultiHeadSelfAttention(8, num_heads=4, rng=rng())
        out = layer(Tensor(rng().normal(size=(3, 8))))
        (out * out).mean().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_attention_is_permutation_invariant(self, rows, seed):
        """Permuting the input rows permutes the output rows identically (Proof 2)."""
        generator = np.random.default_rng(seed)
        layer = MultiHeadSelfAttention(8, num_heads=2, rng=np.random.default_rng(0))
        x = generator.normal(size=(rows, 8))
        permutation = generator.permutation(rows)
        out = layer(Tensor(x)).numpy()
        out_permuted = layer(Tensor(x[permutation])).numpy()
        np.testing.assert_allclose(out[permutation], out_permuted, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_rowwise_ff_is_permutation_invariant(self, rows, seed):
        """Row-wise feed-forward layers commute with row permutations (Proof 1)."""
        generator = np.random.default_rng(seed)
        layer = RowwiseFeedForward(5, 7, rng=np.random.default_rng(0))
        x = generator.normal(size=(rows, 5))
        permutation = generator.permutation(rows)
        out = layer(Tensor(x)).numpy()
        out_permuted = layer(Tensor(x[permutation])).numpy()
        np.testing.assert_allclose(out[permutation], out_permuted, atol=1e-12)


class TestLayerNorm:
    def test_normalises_last_dimension(self):
        layer = LayerNorm(6)
        out = layer(Tensor(rng().normal(size=(4, 6)) * 10 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_learnable_parameters_exist(self):
        layer = LayerNorm(6)
        assert {name for name, _ in layer.named_parameters()} == {"gamma", "beta"}


class TestParameter:
    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_custom_module_registration(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.p = Parameter(np.zeros(2))
                self.child = Linear(2, 2, rng=rng())

            def forward(self, x):
                return self.child(x) + self.p

        module = Custom()
        names = {name for name, _ in module.named_parameters()}
        assert names == {"p", "child.weight", "child.bias"}
