"""Tests for the batched (3-D / leading-dim) tensor engine in :mod:`repro.nn`.

The batched execution engine pushes whole ``(batch, rows, features)`` stacks
through the same autograd ops that previously only saw single ``(rows,
features)`` sets.  These tests pin down (a) that the N-D ops compute the same
values and gradients as per-sample loops, and (b) the satellite fixes around
``item()``, in-place gradient accumulation and the ``no_grad`` decorator.
"""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    MultiHeadSelfAttention,
    Tensor,
    is_grad_enabled,
    no_grad,
    scaled_dot_product_attention,
)


class TestBatchedTensorOps:
    def test_batched_matmul_with_shared_weight_gradients(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((3, 4, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        out = x @ w
        assert out.shape == (3, 4, 2)
        upstream = rng.standard_normal((3, 4, 2))
        out.backward(upstream)

        # Reference: per-sample matmuls accumulate into the shared weight.
        expected_w = np.zeros_like(w.data)
        for b in range(3):
            expected_w += x.data[b].T @ upstream[b]
            np.testing.assert_allclose(x.grad[b], upstream[b] @ w.data.T, atol=1e-12)
        np.testing.assert_allclose(w.grad, expected_w, atol=1e-12)

    def test_batched_softmax_matches_per_sample(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((4, 3, 3))
        batched = Tensor(data, requires_grad=True)
        out = batched.softmax(axis=-1)
        for b in range(4):
            single = Tensor(data[b]).softmax(axis=-1)
            np.testing.assert_allclose(out.numpy()[b], single.numpy(), atol=1e-12)

    def test_masked_fill_broadcasts_trailing_mask(self):
        rng = np.random.default_rng(2)
        scores = Tensor(rng.standard_normal((2, 3, 3)), requires_grad=True)
        mask = np.zeros((2, 1, 3), dtype=bool)
        mask[1, 0, 2] = True
        out = scores.masked_fill(np.broadcast_to(mask, scores.shape), -1e9)
        assert (out.numpy()[1, :, 2] == -1e9).all()
        out.sum().backward()
        assert (scores.grad[1, :, 2] == 0.0).all()
        assert (scores.grad[0] == 1.0).all()

    def test_getitem_fancy_index_gathers_and_scatters(self):
        rng = np.random.default_rng(3)
        values = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        rows = np.arange(5)
        cols = np.array([0, 3, 1, 1, 2])
        picked = values[rows, cols]
        assert picked.shape == (5,)
        picked.sum().backward()
        expected = np.zeros((5, 4))
        expected[rows, cols] = 1.0
        np.testing.assert_allclose(values.grad, expected)

    def test_swapaxes_and_transpose_negative_axes(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        swapped = x.swapaxes(-1, -2)
        assert swapped.shape == (2, 4, 3)
        swapped.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_concatenate_on_batched_tensors(self):
        rng = np.random.default_rng(5)
        a = Tensor(rng.standard_normal((2, 3, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3, 5)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=-1)
        assert out.shape == (2, 3, 7)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(a.shape))
        np.testing.assert_allclose(b.grad, np.ones(b.shape))


class TestBatchedAttention:
    def test_3d_attention_matches_per_sample_2d(self):
        rng = np.random.default_rng(6)
        q = rng.standard_normal((4, 5, 8))
        k = rng.standard_normal((4, 5, 8))
        v = rng.standard_normal((4, 5, 8))
        masks = np.zeros((4, 5), dtype=bool)
        masks[0, 3:] = True
        masks[2, 4:] = True

        batched = scaled_dot_product_attention(
            Tensor(q), Tensor(k), Tensor(v), mask=masks[:, np.newaxis, :]
        )
        for b in range(4):
            single = scaled_dot_product_attention(
                Tensor(q[b]), Tensor(k[b]), Tensor(v[b]), mask=masks[b]
            )
            np.testing.assert_allclose(batched.numpy()[b], single.numpy(), atol=1e-12)

    def test_vectorized_heads_match_per_head_loop(self):
        """The one-matmul head computation equals the original per-head slicing."""
        rng = np.random.default_rng(7)
        layer = MultiHeadSelfAttention(embed_dim=12, num_heads=3, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((6, 12)))
        mask = np.array([False, False, False, False, True, True])

        out = layer(x, mask=mask)

        # Reference: the seed implementation looped heads over column slices,
        # with three separate Q/K/V projections (reconstructed here from the
        # fused in_proj parameter's column blocks).
        E = layer.embed_dim
        w = layer.in_proj_weight
        b = layer.in_proj_bias
        queries = x @ w[:, 0:E] + b[0:E]
        keys = x @ w[:, E : 2 * E] + b[E : 2 * E]
        values = x @ w[:, 2 * E : 3 * E] + b[2 * E : 3 * E]
        head_outputs = []
        for head in range(layer.num_heads):
            start = head * layer.head_dim
            end = start + layer.head_dim
            head_outputs.append(
                scaled_dot_product_attention(
                    queries[:, start:end], keys[:, start:end], values[:, start:end], mask=mask
                )
            )
        reference = layer.output_proj(Tensor.concatenate(head_outputs, axis=-1))
        np.testing.assert_allclose(out.numpy(), reference.numpy(), atol=1e-10)

    def test_batched_attention_layer_matches_per_sample(self):
        rng = np.random.default_rng(8)
        layer = MultiHeadSelfAttention(embed_dim=8, num_heads=2, rng=np.random.default_rng(1))
        x = rng.standard_normal((3, 5, 8))
        masks = np.zeros((3, 5), dtype=bool)
        masks[1, 2:] = True

        batched = layer(Tensor(x), mask=masks)
        assert batched.shape == (3, 5, 8)
        for b in range(3):
            single = layer(Tensor(x[b]), mask=masks[b])
            np.testing.assert_allclose(batched.numpy()[b], single.numpy(), atol=1e-10)

    def test_batched_linear_matches_per_sample(self):
        rng = np.random.default_rng(9)
        layer = Linear(6, 4, rng=np.random.default_rng(2))
        x = rng.standard_normal((5, 3, 6))
        batched = layer(Tensor(x))
        assert batched.shape == (5, 3, 4)
        for b in range(5):
            np.testing.assert_allclose(
                batched.numpy()[b], layer(Tensor(x[b])).numpy(), atol=1e-12
            )


class TestSatelliteFixes:
    def test_item_raises_clear_error_on_multi_element_tensor(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor(np.zeros((2, 2))).item()

    def test_item_on_scalar_tensor(self):
        assert Tensor(np.array([[3.5]])).item() == 3.5

    def test_accumulate_owns_buffer_and_does_not_mutate_seed_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        out = x + x  # two accumulation paths into x
        seed = np.full(3, 2.0)
        out.backward(seed)
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))
        # The externally provided seed gradient must stay untouched.
        np.testing.assert_allclose(seed, np.full(3, 2.0))

    def test_no_grad_as_decorator(self):
        @no_grad()
        def inference(t):
            assert not is_grad_enabled()
            return (t * 2.0).sum()

        t = Tensor(np.ones(4), requires_grad=True)
        out = inference(t)
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_decorator_is_reentrant(self):
        @no_grad()
        def inner():
            return is_grad_enabled()

        @no_grad()
        def outer():
            first = inner()
            return first, is_grad_enabled()

        assert outer() == (False, False)
        assert is_grad_enabled()
