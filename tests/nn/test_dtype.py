"""The configurable-precision mode of the nn substrate.

float64 stays the default (and must stay bit-identical to the historical
behaviour — the determinism suite pins that end to end); these tests pin the
float32 mode itself: dtype resolution and scoping, dtype propagation through
tensors, ops, gradients, layers, losses and optimisers, and checkpoint
round-trips that preserve the parameter dtype.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    SGD,
    Tensor,
    build_mlp,
    default_dtype,
    get_default_dtype,
    mse_loss,
    resolve_dtype,
    set_default_dtype,
    weighted_mse_loss,
)
from repro.nn.layers import LayerNorm, MultiHeadSelfAttention, Parameter
from repro.nn import init as initializers


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDtypeResolution:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_set_and_get(self):
        set_default_dtype("float32")
        assert get_default_dtype() == np.float32

    def test_resolve_none_uses_default(self):
        assert resolve_dtype(None) == np.float64
        set_default_dtype(np.float32)
        assert resolve_dtype(None) == np.float32

    def test_resolve_accepts_names_and_dtypes(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64

    @pytest.mark.parametrize("bad", ["float16", np.int64, "complex128"])
    def test_unsupported_dtypes_raise(self, bad):
        with pytest.raises(ValueError, match="unsupported nn dtype"):
            resolve_dtype(bad)

    def test_context_manager_scopes_the_override(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert get_default_dtype() == np.float64


class TestTensorDtype:
    def test_lists_and_scalars_use_the_default(self):
        assert Tensor([1, 2, 3]).dtype == np.float64
        set_default_dtype("float32")
        assert Tensor([1, 2, 3]).dtype == np.float32
        assert Tensor(2.5).dtype == np.float32

    def test_floating_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_integer_arrays_are_cast_to_the_default(self):
        assert Tensor(np.arange(3)).dtype == np.float64

    def test_explicit_dtype_forces_a_cast(self):
        assert Tensor(np.zeros(3, dtype=np.float64), dtype="float32").dtype == np.float32

    @pytest.mark.parametrize(
        "op",
        [
            lambda x: x + 1.0,
            lambda x: 1.0 + x,
            lambda x: x - 0.5,
            lambda x: 0.5 - x,
            lambda x: x * 2.0,
            lambda x: x / 3.0,
            lambda x: 2.0 / x,
            lambda x: x**2,
            lambda x: x.relu(),
            lambda x: x.exp(),
            lambda x: x.sigmoid(),
            lambda x: x.tanh(),
            lambda x: x.softmax(),
            lambda x: x.sum(),
            lambda x: x.mean(),
            lambda x: x.max(),
            lambda x: x @ Tensor(np.ones((3, 2), dtype=np.float32)),
        ],
    )
    def test_float32_ops_stay_float32(self, op):
        x = Tensor(np.ones(3, dtype=np.float32) * 0.5, requires_grad=True)
        out = op(x)
        assert out.dtype == np.float32, "forward promoted to float64"
        out.sum().backward()
        assert x.grad.dtype == np.float32, "gradient promoted to float64"

    def test_scalar_operand_in_float64_matches_old_behaviour(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert (x * 0.25).dtype == np.float64

    def test_split_preserves_dtype_and_grads(self):
        x = Tensor(np.ones((2, 6), dtype=np.float32), requires_grad=True)
        a, b, c = x.split(3, axis=-1)
        assert all(piece.dtype == np.float32 for piece in (a, b, c))
        (a.sum() + b.sum() + c.sum()).backward()
        assert x.grad.dtype == np.float32


class TestInitializers:
    def test_float32_draws_match_cast_float64_draws(self):
        """Both precisions consume the same RNG stream (cast after drawing)."""
        shape = (5, 7)
        reference = initializers.xavier_uniform(shape, np.random.default_rng(3))
        drawn = initializers.xavier_uniform(shape, np.random.default_rng(3), dtype="float32")
        assert drawn.dtype == np.float32
        np.testing.assert_array_equal(drawn, reference.astype(np.float32))


class TestLayersAndLosses:
    def test_linear_dtype_threads_to_parameters_and_output(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0), dtype="float32")
        assert layer.weight.dtype == np.float32
        assert layer.bias.dtype == np.float32
        out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.dtype == np.float32
        assert layer.param_dtype() == np.float32

    def test_attention_and_layernorm_dtype(self):
        attention = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0), dtype="float32")
        assert attention.in_proj_weight.dtype == np.float32
        out = attention(Tensor(np.ones((3, 8), dtype=np.float32)))
        assert out.dtype == np.float32
        norm = LayerNorm(8, dtype="float32")
        assert norm(out).dtype == np.float32

    def test_losses_keep_float32_against_float64_targets(self):
        prediction = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        target = np.zeros(4)  # float64, as the TD machinery produces
        loss = mse_loss(prediction, target)
        assert loss.dtype == np.float32
        loss.backward()
        assert prediction.grad.dtype == np.float32

        prediction.zero_grad()
        loss = weighted_mse_loss(prediction, target, np.ones(4))
        assert loss.dtype == np.float32

    def test_mlp_trains_in_float32(self):
        rng = np.random.default_rng(0)
        model = build_mlp([3, 8, 1], rng=rng, dtype="float32")
        optimizer = Adam(list(model.parameters()), lr=0.01)
        x = rng.normal(size=(32, 3)).astype(np.float32)
        y = (x @ np.array([[1.0], [-2.0], [0.5]], dtype=np.float32)).astype(np.float32)
        first = None
        for _ in range(150):
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert loss.item() < first * 0.2

    def test_load_state_dict_casts_to_parameter_dtype(self):
        source = Linear(3, 2, rng=np.random.default_rng(0))  # float64
        target = Linear(3, 2, rng=np.random.default_rng(1), dtype="float32")
        target.load_state_dict(source.state_dict())
        assert target.weight.dtype == np.float32
        np.testing.assert_array_equal(
            target.weight.data, source.weight.data.astype(np.float32)
        )


class TestOptimizerDtype:
    def test_moment_buffers_follow_parameter_dtype(self):
        params = [Parameter(np.ones(4, dtype=np.float32))]
        adam = Adam(params, lr=0.1)
        state = adam.state_dict()
        assert state["first_moment"]["0"].dtype == np.float32

    def test_check_buffers_restores_in_parameter_dtype(self):
        """The satellite fix: float64 checkpoint buffers must not re-inflate
        a float32 optimiser's moments to float64."""
        params = [Parameter(np.ones(4, dtype=np.float32))]
        adam = Adam(params, lr=0.1)
        params[0].grad = np.full(4, 0.5, dtype=np.float32)
        adam.step()
        state = adam.state_dict()
        # Simulate a checkpoint round-trip that lost the dtype (json/npz of
        # an older writer, or a float64-written archive).
        state["first_moment"] = {"0": state["first_moment"]["0"].astype(np.float64)}
        state["second_moment"] = {"0": state["second_moment"]["0"].astype(np.float64)}

        restored = Adam([Parameter(np.ones(4, dtype=np.float32))], lr=0.1)
        restored.load_state_dict(state)
        inner = restored.state_dict()
        assert inner["first_moment"]["0"].dtype == np.float32
        assert inner["second_moment"]["0"].dtype == np.float32

    def test_sgd_velocity_dtype(self):
        params = [Parameter(np.ones(4, dtype=np.float32))]
        sgd = SGD(params, lr=0.1, momentum=0.9)
        params[0].grad = np.full(4, 1.0, dtype=np.float32)
        sgd.step()
        assert params[0].dtype == np.float32
        assert sgd.state_dict()["velocity"]["0"].dtype == np.float32

    def test_mixed_dtype_parameter_lists_are_rejected(self):
        params = [
            Parameter(np.ones(2, dtype=np.float32)),
            Parameter(np.ones(2, dtype=np.float64)),
        ]
        with pytest.raises(ValueError, match="dtype-homogeneous"):
            SGD(params, lr=0.1)
