"""Tests for optimisers, losses and serialization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Linear,
    Sequential,
    Tensor,
    build_mlp,
    clip_grad_norm,
    huber_loss,
    load_module,
    load_state_dict,
    mse_loss,
    save_module,
    save_state_dict,
    weighted_mse_loss,
)
from repro.nn.layers import Parameter


def quadratic_parameters():
    return [Parameter(np.array([5.0, -3.0]))]


class TestSGD:
    def test_minimises_quadratic(self):
        params = quadratic_parameters()
        optimizer = SGD(params, lr=0.1)
        for _ in range(200):
            loss = (params[0] * params[0]).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-6)

    def test_momentum_accelerates(self):
        plain = quadratic_parameters()
        momentum = quadratic_parameters()
        sgd = SGD(plain, lr=0.01)
        sgd_momentum = SGD(momentum, lr=0.01, momentum=0.9)
        for _ in range(50):
            for params, opt in ((plain, sgd), (momentum, sgd_momentum)):
                loss = (params[0] * params[0]).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert np.abs(momentum[0].data).sum() < np.abs(plain[0].data).sum()

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(quadratic_parameters(), lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD(quadratic_parameters(), lr=0.1, momentum=1.5)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_gradients(self):
        params = quadratic_parameters()
        optimizer = SGD(params, lr=0.1)
        before = params[0].data.copy()
        optimizer.step()
        np.testing.assert_allclose(params[0].data, before)


class TestAdam:
    def test_minimises_quadratic(self):
        params = quadratic_parameters()
        optimizer = Adam(params, lr=0.1)
        for _ in range(300):
            loss = (params[0] * params[0]).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-3)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(quadratic_parameters(), lr=0.1, betas=(1.0, 0.999))

    def test_weight_decay_shrinks_weights(self):
        params = [Parameter(np.array([1.0]))]
        optimizer = Adam(params, lr=0.01, weight_decay=0.5)
        for _ in range(100):
            loss = (params[0] * 0.0).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(params[0].data[0]) < 1.0

    def test_trains_regression_model(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        model = build_mlp([3, 16, 1], rng=rng)
        optimizer = Adam(list(model.parameters()), lr=0.01)
        first_loss = None
        for _ in range(200):
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.1


class TestGradientClipping:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 100.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients_untouched(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, np.full(4, 0.1))

    def test_handles_missing_gradients(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], max_norm=1.0) == 0.0


class TestLosses:
    def test_mse_loss_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_weighted_mse_loss(self):
        loss = weighted_mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(0.5)

    def test_huber_matches_mse_for_small_errors(self):
        prediction = Tensor([0.1, -0.2])
        target = Tensor([0.0, 0.0])
        huber = huber_loss(prediction, target, delta=1.0)
        half_mse = mse_loss(prediction, target).item() / 2.0
        assert huber.item() == pytest.approx(half_mse, rel=1e-6)

    def test_huber_is_linear_for_large_errors(self):
        loss = huber_loss(Tensor([10.0]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(9.5)

    def test_loss_gradients_do_not_reach_targets(self):
        target = Tensor([1.0], requires_grad=True)
        prediction = Tensor([2.0], requires_grad=True)
        mse_loss(prediction, target).backward()
        assert prediction.grad is not None
        assert target.grad is None


class TestSerialization:
    def test_state_dict_round_trip_through_disk(self, tmp_path):
        model = Sequential(Linear(3, 4, rng=np.random.default_rng(0)), Linear(4, 2, rng=np.random.default_rng(1)))
        path = save_module(model, tmp_path / "model.npz")
        clone = Sequential(Linear(3, 4, rng=np.random.default_rng(7)), Linear(4, 2, rng=np.random.default_rng(8)))
        load_module(clone, path)
        x = Tensor(np.random.default_rng(2).normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_appends_npz_suffix(self, tmp_path):
        path = save_state_dict({"w": np.ones(3)}, tmp_path / "weights")
        assert path.suffix == ".npz"
        loaded = load_state_dict(path)
        np.testing.assert_allclose(loaded["w"], np.ones(3))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "nope.npz")
