"""float32 ↔ float64 equivalence-with-tolerance for the compute core.

float64 stays the default and bit-exact; float32 buys ~2× GEMM throughput at
a bounded precision cost.  These tests bound that cost at three levels:

* **forward** — identically initialised networks (same RNG stream, cast
  draws) agree to float32-forward precision on single and batched states;
* **train_step** — identically built learners track each other's losses and
  parameters through several gradient steps;
* **full run** — a 50-arrival DDQN experiment lands within loose metric
  drift bounds of its float64 twin (trajectories diverge chaotically, so the
  bounds are on the final measures, not per-step values);

plus the checkpoint story: a float32 framework round-trips through
``save``/``load`` with its precision intact (networks, Adam moments) and the
restored framework continues exactly like the one that kept running.
"""

import numpy as np
import pytest

from repro.api import DatasetSpec, ExperimentSpec, PolicySpec, run_spec
from repro.core import (
    DoubleDQNLearner,
    FrameworkConfig,
    PrioritizedReplayMemory,
    SetQNetwork,
    StateTransformer,
    TaskArrangementFramework,
    Transition,
)
from repro.crowd import FeatureSchema
from repro.crowd.entities import MINUTES_PER_DAY
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig

from test_checkpoint import drive, make_context, snapshot  # noqa: F401 (fixture)


@pytest.fixture(scope="module")
def schema():
    return FeatureSchema(num_categories=4, num_domains=3, award_bins=(100.0, 300.0))


@pytest.fixture(scope="module")
def transformer(schema):
    return StateTransformer(schema)


def random_states(schema, transformer, count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    states = []
    for index in range(count):
        num_tasks = int(rng.integers(2, 6))
        worker = rng.dirichlet(np.ones(schema.worker_dim))
        tasks = np.zeros((num_tasks, schema.task_dim))
        for row in range(num_tasks):
            tasks[row, rng.integers(0, schema.num_categories)] = 1.0
            tasks[row, schema.num_categories + rng.integers(0, schema.num_domains)] = 1.0
        states.append(transformer.transform(worker, tasks, list(range(num_tasks))))
    return states


def twin_networks(transformer, **kwargs):
    f64 = SetQNetwork(transformer.row_dim, dtype="float64", **kwargs)
    f32 = SetQNetwork(transformer.row_dim, dtype="float32", **kwargs)
    return f64, f32


class TestForwardEquivalence:
    def test_parameters_are_cast_of_the_same_draws(self, transformer):
        f64, f32 = twin_networks(transformer, hidden_dim=32, num_heads=2, seed=1)
        for (name, p64), (_, p32) in zip(f64.named_parameters(), f32.named_parameters()):
            assert p32.data.dtype == np.float32, name
            np.testing.assert_array_equal(p32.data, p64.data.astype(np.float32), err_msg=name)

    def test_q_values_agree_to_float32_precision(self, schema, transformer):
        f64, f32 = twin_networks(transformer, hidden_dim=32, num_heads=2, seed=1)
        for state in random_states(schema, transformer, 20, seed=2):
            q64 = f64.q_values(state)
            q32 = f32.q_values(state)
            assert q32.dtype == np.float32
            np.testing.assert_allclose(q32, q64, rtol=2e-4, atol=2e-4)

    def test_float64_tensor_input_cannot_promote_a_float32_network(self, schema, transformer):
        """A mismatched-precision Tensor is re-wrapped on entry (the docstring's
        'inputs are cast on entry' holds for Tensors, not just arrays)."""
        from repro.core.qnetwork import pad_state_batch
        from repro.nn import Tensor

        _, f32 = twin_networks(transformer, hidden_dim=32, num_heads=2, seed=1)
        states = random_states(schema, transformer, 4, seed=5)
        batch, mask = pad_state_batch(states)  # float64 default
        out = f32.forward(Tensor(batch), mask=mask)
        assert out.dtype == np.float32

    def test_batched_forward_agrees(self, schema, transformer):
        f64, f32 = twin_networks(transformer, hidden_dim=32, num_heads=2, seed=1)
        states = random_states(schema, transformer, 16, seed=3)
        batch64 = f64.q_values_batch(states)
        batch32 = f32.q_values_batch(states)
        for q64, q32 in zip(batch64, batch32):
            np.testing.assert_allclose(q32, q64, rtol=2e-4, atol=2e-4)


def build_twin_learners(schema, transformer):
    def build(dtype):
        network = SetQNetwork(
            transformer.row_dim, hidden_dim=32, num_heads=2, seed=3, dtype=dtype
        )
        learner = DoubleDQNLearner(network, gamma=0.5, batch_size=8, target_sync_interval=50)
        memory = PrioritizedReplayMemory(capacity=200, seed=7)
        rng = np.random.default_rng(1)
        states = random_states(schema, transformer, 60, seed=11)
        futures = random_states(schema, transformer, 60, seed=13)
        for i in range(30):
            state = states[i]
            branches = [(0.5, futures[2 * i]), (0.5, futures[2 * i + 1])]
            memory.push(
                Transition(
                    state=state,
                    action_index=int(rng.integers(0, state.num_tasks)),
                    reward=float(rng.random()),
                    future_states=branches,
                )
            )
        return learner, memory

    return build("float64"), build("float32")


class TestTrainStepEquivalence:
    def test_losses_and_parameters_track_through_steps(self, schema, transformer):
        (learner64, memory64), (learner32, memory32) = build_twin_learners(schema, transformer)
        for step in range(5):
            report64 = learner64.train_step(memory64)
            report32 = learner32.train_step(memory32)
            assert report32.batch_size == report64.batch_size
            assert report32.loss == pytest.approx(report64.loss, rel=2e-3, abs=2e-3), step
        for (name, p64), (_, p32) in zip(
            learner64.online.named_parameters(), learner32.online.named_parameters()
        ):
            np.testing.assert_allclose(
                p32.data, p64.data.astype(np.float32), rtol=5e-3, atol=5e-3, err_msg=name
            )


class TestFullRunDrift:
    @pytest.fixture(scope="class")
    def results(self):
        dataset = generate_crowdspring(scale=0.03, num_months=2, seed=1)
        outcomes = {}
        for dtype in ("float64", "float32"):
            spec = ExperimentSpec(
                name=f"dtype-drift-{dtype}",
                dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
                runner=RunnerConfig(seed=0, max_arrivals=50),
                policies=[
                    PolicySpec(
                        "ddqn",
                        {
                            "hidden_dim": 16,
                            "num_heads": 2,
                            "batch_size": 8,
                            "train_interval": 4,
                            "seed": 0,
                            "dtype": dtype,
                            "worker_weight": 0.25,
                        },
                        label=dtype,
                    )
                ],
            )
            outcomes[dtype] = run_spec(spec, dataset=dataset)[dtype]
        return outcomes

    def test_both_precisions_complete_the_same_arrivals(self, results):
        assert results["float32"].arrivals == results["float64"].arrivals == 50

    def test_final_metrics_stay_within_drift_bounds(self, results):
        """Chaotic divergence is expected; catastrophic divergence is a bug."""
        for field in ("cr", "kcr", "ndcg_cr", "qg", "kqg", "ndcg_qg"):
            final64 = getattr(results["float64"], field).final
            final32 = getattr(results["float32"], field).final
            assert abs(final32 - final64) <= 0.25, (
                f"{field}: float32={final32:.3f} float64={final64:.3f}"
            )

    def test_completion_counts_are_comparable(self, results):
        assert abs(results["float32"].completions - results["float64"].completions) <= 15


class TestFloat32Checkpointing:
    def float32_config(self) -> FrameworkConfig:
        return FrameworkConfig(
            hidden_dim=16,
            num_heads=2,
            batch_size=8,
            train_interval=1,
            seed=5,
            dtype="float32",
        )

    def test_checkpoint_records_and_restores_float32(self, snapshot, tmp_path):
        _, _, schema, _ = snapshot
        framework = TaskArrangementFramework(schema, self.float32_config())
        drive(framework, snapshot, MINUTES_PER_DAY, 30)
        path = framework.save(tmp_path / "f32.npz")

        restored = TaskArrangementFramework.load(path)
        assert restored.config.dtype == "float32"
        for agent in (restored.agent_w, restored.agent_r):
            for name, param in agent.network.named_parameters():
                assert param.data.dtype == np.float32, name
            moments = agent.learner.optimizer.state_dict()["first_moment"]
            assert all(m.dtype == np.float32 for m in moments.values())

    def test_restored_float32_framework_continues_identically(self, snapshot, tmp_path):
        _, _, schema, _ = snapshot
        framework = TaskArrangementFramework(schema, self.float32_config())
        drive(framework, snapshot, MINUTES_PER_DAY, 30)
        path = framework.save(tmp_path / "f32.npz")
        restored = TaskArrangementFramework.load(path)

        drive(framework, snapshot, MINUTES_PER_DAY + 1_000.0, 10)
        drive(restored, snapshot, MINUTES_PER_DAY + 1_000.0, 10)
        context = make_context(snapshot, MINUTES_PER_DAY + 9_999.0)
        assert framework.rank_tasks(context) == restored.rank_tasks(context)
        for agent_a, agent_b in (
            (framework.agent_w, restored.agent_w),
            (framework.agent_r, restored.agent_r),
        ):
            for (name, pa), (_, pb) in zip(
                agent_a.network.named_parameters(), agent_b.network.named_parameters()
            ):
                assert np.array_equal(pa.data, pb.data), name
