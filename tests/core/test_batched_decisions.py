"""Batched decision path: ``rank_tasks_batch`` vs sequential ``rank_tasks``.

With no feedback observed in between, ranking a list of independent arrivals
through one padded ``q_values_batch`` per agent must reproduce the
sequential loop: same rankings, same RNG consumption, same pending
bookkeeping — and the decision-only replay in the runner must rank every
online arrival regardless of batch size.
"""

import numpy as np
import pytest

from repro.api import build_policy
from repro.baselines import RandomPolicy
from repro.core import FrameworkConfig, TaskArrangementFramework
from repro.crowd.entities import MINUTES_PER_DAY
from repro.datasets import generate_crowdspring, scalability_snapshot
from repro.eval import RunnerConfig, SimulationRunner

from test_checkpoint import make_context, snapshot  # noqa: F401 (fixture)

TINY = dict(hidden_dim=16, num_heads=2, batch_size=8, train_interval=1, seed=5)


def make_framework(schema, **overrides) -> TaskArrangementFramework:
    return TaskArrangementFramework(schema, FrameworkConfig(**{**TINY, **overrides}))


class TestRankTasksBatch:
    def test_matches_sequential_rank_tasks(self, snapshot):
        _, _, schema, _ = snapshot
        sequential = make_framework(schema)
        batched = make_framework(schema)
        contexts = [make_context(snapshot, MINUTES_PER_DAY + 7.0 * i) for i in range(12)]

        expected = [sequential.rank_tasks(context) for context in contexts]
        actual = batched.rank_tasks_batch(contexts)
        assert actual == expected

    def test_consumes_the_rng_like_the_sequential_loop(self, snapshot):
        """After a batched call, later decisions still line up sequentially."""
        _, _, schema, _ = snapshot
        sequential = make_framework(schema)
        batched = make_framework(schema)
        contexts = [make_context(snapshot, MINUTES_PER_DAY + 7.0 * i) for i in range(8)]

        for context in contexts[:5]:
            sequential.rank_tasks(context)
        batched.rank_tasks_batch(contexts[:5])

        follow_up = make_context(snapshot, MINUTES_PER_DAY + 999.0)
        assert batched.rank_tasks(follow_up) == sequential.rank_tasks(follow_up)

    def test_single_mdp_variants(self, snapshot):
        _, _, schema, _ = snapshot
        for variant in ("worker_only", "requester_only"):
            sequential = getattr(TaskArrangementFramework, variant)(
                schema, FrameworkConfig(**TINY)
            )
            batched = getattr(TaskArrangementFramework, variant)(
                schema, FrameworkConfig(**TINY)
            )
            contexts = [make_context(snapshot, MINUTES_PER_DAY + 3.0 * i) for i in range(6)]
            assert batched.rank_tasks_batch(contexts) == [
                sequential.rank_tasks(context) for context in contexts
            ]

    def test_empty_pools_are_passed_through(self, snapshot):
        _, _, schema, _ = snapshot
        framework = make_framework(schema)
        context = make_context(snapshot, MINUTES_PER_DAY)
        empty = make_context(snapshot, MINUTES_PER_DAY + 1.0)
        empty.available_tasks = []
        rankings = framework.rank_tasks_batch([empty, context])
        assert rankings[0] == []
        assert rankings[1]

    def test_default_interface_implementation_loops(self):
        tasks, worker, schema = scalability_snapshot(5, seed=1)
        features = np.stack([schema.task_features(task) for task in tasks])
        from repro.crowd.platform import ArrivalContext

        contexts = [
            ArrivalContext(
                timestamp=float(i),
                worker=worker,
                worker_feature=schema.empty_worker_features(),
                available_tasks=list(tasks),
                task_features=features,
                task_qualities=np.zeros(len(tasks)),
            )
            for i in range(4)
        ]
        a, b = RandomPolicy(seed=3), RandomPolicy(seed=3)
        assert a.rank_tasks_batch(contexts) == [b.rank_tasks(c) for c in contexts]

    def test_pending_decisions_stay_bounded(self, snapshot):
        _, _, schema, _ = snapshot
        framework = make_framework(schema)
        framework._MAX_PENDING = 10
        for i in range(50):
            framework.rank_tasks(make_context(snapshot, MINUTES_PER_DAY + float(i)))
        assert len(framework._pending) == 10


class TestReplayDecisions:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_crowdspring(scale=0.03, num_months=2, seed=1)

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_ranks_the_requested_number_of_arrivals(self, dataset, batch_size):
        runner = SimulationRunner(dataset, RunnerConfig(seed=0))
        policy = build_policy("ddqn-worker", dataset, **TINY)
        ranked = runner.replay_decisions(policy, batch_size=batch_size, max_arrivals=20)
        assert ranked == 20

    def test_full_trace_without_cap(self, dataset):
        runner = SimulationRunner(dataset, RunnerConfig(seed=0))
        counts = [
            runner.replay_decisions(RandomPolicy(seed=0), batch_size=batch)
            for batch in (1, 16)
        ]
        assert counts[0] == counts[1] > 0

    def test_rejects_non_positive_batch(self, dataset):
        runner = SimulationRunner(dataset, RunnerConfig(seed=0))
        with pytest.raises(ValueError, match="batch_size"):
            runner.replay_decisions(RandomPolicy(seed=0), batch_size=0)
