"""``train_interval``: amortising the dominant per-arrival update path.

The per-arrival gradient step dominates DDQN end-to-end throughput;
``train_interval=N`` trains only on every N-th stored transition.  The knob
is exposed end to end — ``AgentConfig`` → ``FrameworkConfig`` → the ``ddqn*``
registry kwargs / JSON specs — and ``train_interval=1`` is pinned
bit-identical to the historical update-after-every-feedback behaviour.
"""

import numpy as np
import pytest

from repro.api import build_policy
from repro.core import FrameworkConfig
from repro.core.agent import AgentConfig
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig, SimulationRunner
from tests.eval.test_determinism import assert_results_identical

TINY = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0, "max_tasks": 12}


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


def run(dataset, **kwargs):
    policy = build_policy("ddqn-worker", dataset, **kwargs)
    result = SimulationRunner(
        dataset, RunnerConfig(seed=0, max_arrivals=20, max_warmup_observations=12)
    ).run(policy)
    return policy, result


class TestTrainInterval:
    def test_registry_threads_the_knob_through_to_both_agents(self, dataset):
        policy = build_policy("ddqn", dataset, train_interval=3, **TINY)
        assert policy.config.train_interval == 3
        assert policy.agent_w.config.train_interval == 3
        assert policy.agent_r.config.train_interval == 3
        assert FrameworkConfig().train_interval == 1
        assert AgentConfig().train_interval == 1

    def test_interval_one_is_bit_identical_to_the_default(self, dataset):
        _, explicit = run(dataset, train_interval=1, **TINY)
        _, default = run(dataset, **TINY)
        assert_results_identical(explicit, default)

    def test_larger_interval_trains_less_often(self, dataset):
        policy_every, _ = run(dataset, train_interval=1, **TINY)
        policy_amortised, _ = run(dataset, train_interval=4, **TINY)
        every = policy_every.agent_w.diagnostics
        amortised = policy_amortised.agent_w.diagnostics
        # The two runs diverge (training changes rankings, rankings change
        # feedback), so observation counts differ slightly; the cadence claim
        # is per-run: interval 4 performs roughly a quarter of the steps.
        assert 0 < amortised.train_steps < every.train_steps
        assert amortised.train_steps <= amortised.observations // 4
        # The cadence is exact: one step per train_interval observations once
        # the buffer floor is reached.
        assert amortised.train_steps == sum(
            1
            for count in range(1, amortised.observations + 1)
            if count % 4 == 0
            and count >= policy_amortised.agent_w.config.min_buffer_before_training
        )

    def test_agent_should_train_matches_store_and_train(self):
        from repro.core.replay import Transition
        from repro.core.state import StateMatrix

        agent_config = AgentConfig(
            hidden_dim=8, num_heads=2, batch_size=4, train_interval=2,
            min_buffer_before_training=2, seed=0,
        )
        agent = build_agent = __import__("repro.core.agent", fromlist=["DQNAgent"]).DQNAgent(
            6, agent_config
        )
        rng = np.random.default_rng(0)
        steps = []
        for i in range(6):
            matrix = rng.standard_normal((3, 6))
            state = StateMatrix(matrix=matrix, mask=np.zeros(3, bool), task_ids=[0, 1, 2])
            report = agent.store_and_train(Transition(state=state, action_index=0, reward=1.0))
            steps.append(report is not None)
        # Buffer floor 2, cadence 2: observations 2, 4, 6 train.
        assert steps == [False, True, False, True, False, True]
