"""Tests for replay memories, the sum tree and the future-state predictors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FutureStatePredictorR,
    FutureStatePredictorW,
    PrioritizedReplayMemory,
    ReplayMemory,
    StateTransformer,
    SumTree,
    Transition,
    expiry_branches,
)
from repro.crowd import FeatureSchema, WorkerArrivalStatistics


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=3, num_domains=2, award_bins=(100.0,))


def make_state(schema, transformer, num_tasks=4, seed=0, with_quality=False):
    rng = np.random.default_rng(seed)
    worker = rng.dirichlet(np.ones(schema.worker_dim))
    tasks = np.zeros((num_tasks, schema.task_dim))
    for row in range(num_tasks):
        tasks[row, rng.integers(0, schema.num_categories)] = 1.0
    kwargs = {"worker_quality": 0.5, "task_qualities": np.zeros(num_tasks)} if with_quality else {}
    return transformer.transform(worker, tasks, list(range(num_tasks)), **kwargs)


def make_transition(schema, transformer, reward=1.0, seed=0):
    state = make_state(schema, transformer, seed=seed)
    return Transition(state=state, action_index=0, reward=reward, future_states=[(1.0, state)])


class TestReplayMemory:
    def test_push_and_sample(self, schema):
        transformer = StateTransformer(schema)
        memory = ReplayMemory(capacity=10, seed=0)
        for i in range(5):
            memory.push(make_transition(schema, transformer, seed=i))
        transitions, indices, weights = memory.sample(3)
        assert len(transitions) == 3
        np.testing.assert_allclose(weights, np.ones(3))

    def test_capacity_is_ring_buffer(self, schema):
        transformer = StateTransformer(schema)
        memory = ReplayMemory(capacity=3, seed=0)
        for i in range(7):
            memory.push(make_transition(schema, transformer, reward=float(i)))
        assert len(memory) == 3

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayMemory(capacity=3).sample(1)

    def test_sample_more_than_stored_returns_all(self, schema):
        transformer = StateTransformer(schema)
        memory = ReplayMemory(capacity=10, seed=0)
        memory.push(make_transition(schema, transformer))
        transitions, _, _ = memory.sample(5)
        assert len(transitions) == 1

    def test_clear(self, schema):
        transformer = StateTransformer(schema)
        memory = ReplayMemory(capacity=5)
        memory.push(make_transition(schema, transformer))
        memory.clear()
        assert len(memory) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayMemory(capacity=0)


class TestSumTree:
    def test_total_tracks_updates(self):
        tree = SumTree(8)
        tree.update(0, 1.0)
        tree.update(3, 2.0)
        assert tree.total == pytest.approx(3.0)
        tree.update(0, 0.5)
        assert tree.total == pytest.approx(2.5)

    def test_find_returns_leaf_in_range(self):
        tree = SumTree(4)
        tree.update(0, 1.0)
        tree.update(1, 2.0)
        tree.update(2, 3.0)
        assert tree.find(0.5) == 0
        assert tree.find(2.5) == 1
        assert tree.find(5.9) == 2

    def test_rejects_invalid_updates(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.update(4, 1.0)
        with pytest.raises(ValueError):
            tree.update(0, -1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        priorities=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=16),
        fraction=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_find_respects_cumulative_distribution(self, priorities, fraction):
        """find(v) returns the leaf whose cumulative interval contains v."""
        tree = SumTree(len(priorities))
        for index, priority in enumerate(priorities):
            tree.update(index, priority)
        value = fraction * tree.total
        leaf = tree.find(value)
        cumulative = np.cumsum(priorities)
        expected = int(np.searchsorted(cumulative, value, side="left"))
        expected = min(expected, len(priorities) - 1)
        assert leaf == expected


class TestPrioritizedReplay:
    def test_importance_weights_in_unit_interval(self, schema):
        transformer = StateTransformer(schema)
        memory = PrioritizedReplayMemory(capacity=20, seed=0)
        for i in range(10):
            memory.push(make_transition(schema, transformer, seed=i))
        _, _, weights = memory.sample(5)
        assert (weights > 0).all()
        assert (weights <= 1.0 + 1e-9).all()

    def test_high_priority_items_are_sampled_more(self, schema):
        transformer = StateTransformer(schema)
        memory = PrioritizedReplayMemory(capacity=10, alpha=1.0, seed=0)
        for i in range(10):
            memory.push(make_transition(schema, transformer, reward=float(i), seed=i))
        # Give transition 0 a huge TD error and the rest tiny ones.
        memory.update_priorities(np.arange(10), np.array([100.0] + [0.001] * 9))
        counts = np.zeros(10)
        for _ in range(200):
            _, indices, _ = memory.sample(1)
            counts[int(indices[0])] += 1
        assert counts[0] > 100

    def test_beta_anneals_towards_one(self, schema):
        transformer = StateTransformer(schema)
        memory = PrioritizedReplayMemory(capacity=10, beta_start=0.4, beta_increment=0.1, seed=0)
        memory.push(make_transition(schema, transformer))
        for _ in range(10):
            memory.sample(1)
        assert memory.beta == pytest.approx(1.0)

    def test_capacity_eviction(self, schema):
        transformer = StateTransformer(schema)
        memory = PrioritizedReplayMemory(capacity=4, seed=0)
        for i in range(9):
            memory.push(make_transition(schema, transformer, seed=i))
        assert len(memory) == 4

    def test_clear_resets_tree(self, schema):
        transformer = StateTransformer(schema)
        memory = PrioritizedReplayMemory(capacity=4, seed=0)
        memory.push(make_transition(schema, transformer))
        memory.clear()
        assert len(memory) == 0
        memory.push(make_transition(schema, transformer))
        transitions, _, _ = memory.sample(1)
        assert len(transitions) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(capacity=0)
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(alpha=2.0)


class TestExpiryBranches:
    def test_no_expiries_yields_single_branch(self):
        centers = np.array([5.0, 15.0, 25.0])
        probs = np.array([0.2, 0.3, 0.5])
        branches = expiry_branches(centers, probs, {}, max_branches=4)
        assert len(branches) == 1
        probability, expired = branches[0]
        assert probability == pytest.approx(1.0)
        assert expired == set()

    def test_probabilities_sum_to_one(self):
        centers = np.array([5.0, 15.0, 25.0, 35.0])
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        branches = expiry_branches(centers, probs, {1: 10.0, 2: 30.0}, max_branches=4)
        assert sum(p for p, _ in branches) == pytest.approx(1.0)

    def test_later_branches_contain_more_expired_tasks(self):
        centers = np.array([5.0, 15.0, 25.0, 35.0])
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        branches = expiry_branches(centers, probs, {1: 10.0, 2: 30.0}, max_branches=4)
        sizes = [len(expired) for _, expired in branches]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 2

    def test_max_branches_is_respected(self):
        centers = np.linspace(1, 100, 100)
        probs = np.full(100, 0.01)
        offsets = {task_id: float(task_id * 7 + 1) for task_id in range(10)}
        branches = expiry_branches(centers, probs, offsets, max_branches=3)
        assert len(branches) <= 3

    def test_rejects_bad_max_branches(self):
        with pytest.raises(ValueError):
            expiry_branches(np.array([1.0]), np.array([1.0]), {}, max_branches=0)


class TestFutureStatePredictors:
    def _statistics(self, schema, gaps=(30.0, 60.0, 1_440.0)):
        stats = WorkerArrivalStatistics(schema.worker_dim)
        now = 0.0
        for index, gap in enumerate(np.cumsum(gaps)):
            stats.record_arrival(1, float(gap), np.ones(schema.worker_dim) / schema.worker_dim)
        return stats

    def test_predictor_w_branches_have_updated_worker_feature(self, schema):
        transformer = StateTransformer(schema)
        stats = self._statistics(schema)
        predictor = FutureStatePredictorW(transformer, stats, max_branches=3)
        state = make_state(schema, transformer, num_tasks=3, seed=1)
        new_feature = np.zeros(schema.worker_dim)
        new_feature[0] = 1.0
        branches = predictor.predict(state, now=2_000.0, task_deadlines={0: 2_500.0, 1: 9_999.0, 2: 99_999.0}, updated_worker_feature=new_feature)
        assert branches
        assert sum(probability for probability, _ in branches) == pytest.approx(1.0)
        for _, future in branches:
            worker_block = future.matrix[: future.num_tasks, schema.task_dim : schema.task_dim + schema.worker_dim]
            np.testing.assert_allclose(worker_block, np.tile(new_feature, (future.num_tasks, 1)))

    def test_predictor_w_removes_expiring_tasks_in_later_branches(self, schema):
        transformer = StateTransformer(schema)
        stats = WorkerArrivalStatistics(schema.worker_dim)
        # Same worker returns after ~2 days quite often.
        for gap_index in range(20):
            stats.same_worker_gaps.observe(2 * 1_440.0)
        predictor = FutureStatePredictorW(transformer, stats, max_branches=4)
        state = make_state(schema, transformer, num_tasks=3, seed=2)
        deadlines = {0: 100.0 + 60.0, 1: 100.0 + 3 * 1_440.0, 2: 100.0 + 30 * 1_440.0}
        branches = predictor.predict(state, now=100.0, task_deadlines=deadlines, updated_worker_feature=np.zeros(schema.worker_dim))
        # The dominant branch (~2 days later) must have task 0 expired.
        dominant = max(branches, key=lambda item: item[0])
        assert 0 not in dominant[1].task_ids
        assert 1 in dominant[1].task_ids

    def test_predictor_r_uses_expected_worker_feature(self, schema):
        transformer = StateTransformer(schema, include_quality=True)
        stats = self._statistics(schema)
        predictor = FutureStatePredictorR(transformer, stats, max_branches=2)
        state = make_state(schema, transformer, num_tasks=3, seed=3, with_quality=True)
        lookup = lambda worker_id: np.ones(schema.worker_dim) / schema.worker_dim
        branches = predictor.predict(state, now=2_000.0, task_deadlines={0: 99_999.0, 1: 99_999.0, 2: 99_999.0}, feature_lookup=lookup)
        assert branches
        assert sum(probability for probability, _ in branches) == pytest.approx(1.0)
        expected_feature = stats.expected_next_worker_feature(2_000.0, lookup)
        worker_block = branches[0][1].matrix[:3, schema.task_dim : schema.task_dim + schema.worker_dim]
        np.testing.assert_allclose(worker_block[0], expected_feature)
