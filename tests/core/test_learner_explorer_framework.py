"""Tests for the learner, explorers, aggregator, agent and end-to-end framework."""

import numpy as np
import pytest

from repro.core import (
    AgentConfig,
    DQNAgent,
    DoubleDQNLearner,
    EpsilonGreedyExplorer,
    FrameworkConfig,
    GaussianPerturbationExplorer,
    PrioritizedReplayMemory,
    QValueAggregator,
    ReplayMemory,
    SetQNetwork,
    StateTransformer,
    TaskArrangementFramework,
    Transition,
)
from repro.crowd import (
    CascadeBehavior,
    CrowdsourcingPlatform,
    Event,
    EventType,
    FeatureSchema,
    InterestModel,
    Task,
    Worker,
)


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=3, num_domains=2, award_bins=(100.0,))


def make_state(schema, transformer, num_tasks=4, seed=0):
    rng = np.random.default_rng(seed)
    worker = rng.dirichlet(np.ones(schema.worker_dim))
    tasks = np.zeros((num_tasks, schema.task_dim))
    for row in range(num_tasks):
        tasks[row, rng.integers(0, schema.num_categories)] = 1.0
    return transformer.transform(worker, tasks, list(range(num_tasks)))


def fill_memory(schema, transformer, memory, count=20):
    for i in range(count):
        state = make_state(schema, transformer, seed=i)
        memory.push(
            Transition(
                state=state,
                action_index=i % state.num_tasks,
                reward=float(i % 2),
                future_states=[(1.0, state)],
            )
        )


class TestDoubleDQNLearner:
    def test_td_target_without_future_states_is_reward(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, gamma=0.5)
        state = make_state(schema, transformer)
        transition = Transition(state=state, action_index=0, reward=0.7, future_states=[])
        assert learner.td_target(transition) == pytest.approx(0.7)

    def test_td_target_adds_discounted_future_value(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, gamma=0.5)
        state = make_state(schema, transformer)
        future = make_state(schema, transformer, seed=1)
        transition = Transition(state=state, action_index=0, reward=1.0, future_states=[(1.0, future)])
        online_values = learner.online.q_values(future)
        best = int(np.argmax(online_values))
        expected = 1.0 + 0.5 * learner.target.q_values(future)[best]
        assert learner.td_target(transition) == pytest.approx(expected)

    def test_td_target_weights_branches_by_probability(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, gamma=1.0)
        state = make_state(schema, transformer)
        branch_a = make_state(schema, transformer, seed=2)
        branch_b = make_state(schema, transformer, seed=3)
        transition = Transition(
            state=state,
            action_index=0,
            reward=0.0,
            future_states=[(0.25, branch_a), (0.75, branch_b)],
        )
        value = learner.td_target(transition)
        value_a = learner.target.q_values(branch_a)[int(np.argmax(learner.online.q_values(branch_a)))]
        value_b = learner.target.q_values(branch_b)[int(np.argmax(learner.online.q_values(branch_b)))]
        assert value == pytest.approx(0.25 * value_a + 0.75 * value_b)

    def test_train_step_updates_parameters_and_reduces_loss(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, gamma=0.3, learning_rate=3e-3, batch_size=8)
        memory = ReplayMemory(capacity=100, seed=0)
        fill_memory(schema, transformer, memory, count=30)
        before = network.state_dict()
        reports = [learner.train_step(memory) for _ in range(30)]
        after = network.state_dict()
        assert any(not np.allclose(before[name], after[name]) for name in before)
        first = np.mean([r.loss for r in reports[:5]])
        last = np.mean([r.loss for r in reports[-5:]])
        assert last < first

    def test_target_network_sync_interval(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, target_sync_interval=3, batch_size=4)
        memory = ReplayMemory(capacity=50, seed=0)
        fill_memory(schema, transformer, memory, count=10)
        for _ in range(2):
            learner.train_step(memory)
        state = make_state(schema, transformer, seed=42)
        assert not np.allclose(learner.online.q_values(state), learner.target.q_values(state))
        learner.train_step(memory)  # third update triggers the hard copy
        np.testing.assert_allclose(
            learner.online.q_values(state), learner.target.q_values(state)
        )

    def test_train_step_on_empty_memory_returns_none(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network)
        assert learner.train_step(ReplayMemory(capacity=5)) is None

    def test_prioritized_memory_priorities_are_refreshed(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        learner = DoubleDQNLearner(network, batch_size=4)
        memory = PrioritizedReplayMemory(capacity=50, seed=0)
        fill_memory(schema, transformer, memory, count=10)
        report = learner.train_step(memory)
        assert report is not None
        assert report.batch_size == 4

    def test_invalid_hyperparameters(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        with pytest.raises(ValueError):
            DoubleDQNLearner(network, gamma=1.5)
        with pytest.raises(ValueError):
            DoubleDQNLearner(network, batch_size=0)
        with pytest.raises(ValueError):
            DoubleDQNLearner(network, target_sync_interval=0)


class TestExplorers:
    def test_epsilon_greedy_schedule(self):
        explorer = EpsilonGreedyExplorer(exploit_start=0.5, exploit_end=1.0, anneal_steps=10)
        assert explorer.exploit_probability == pytest.approx(0.5)
        for _ in range(10):
            explorer.step()
        assert explorer.exploit_probability == pytest.approx(1.0)

    def test_epsilon_greedy_exploits_when_probability_is_one(self):
        explorer = EpsilonGreedyExplorer(exploit_start=1.0, exploit_end=1.0)
        rng = np.random.default_rng(0)
        q = np.array([0.1, 0.9, 0.3])
        assert all(explorer.select(q, rng) == 1 for _ in range(20))

    def test_epsilon_greedy_explores_when_probability_is_zero(self):
        explorer = EpsilonGreedyExplorer(exploit_start=0.0, exploit_end=0.0)
        rng = np.random.default_rng(0)
        q = np.array([0.1, 0.9, 0.3])
        picks = {explorer.select(q, rng) for _ in range(100)}
        assert picks == {0, 1, 2}

    def test_epsilon_greedy_empty_actions_raises(self):
        with pytest.raises(ValueError):
            EpsilonGreedyExplorer().select(np.array([]), np.random.default_rng(0))

    def test_gaussian_explorer_no_perturbation_when_probability_zero(self):
        explorer = GaussianPerturbationExplorer(perturb_probability=0.0)
        q = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(explorer.perturb(q, np.random.default_rng(0)), q)

    def test_gaussian_explorer_perturbs_with_probability_one(self):
        explorer = GaussianPerturbationExplorer(perturb_probability=1.0)
        q = np.array([1.0, 2.0, 3.0])
        assert not np.allclose(explorer.perturb(q, np.random.default_rng(0)), q)

    def test_gaussian_noise_scale_decays(self):
        explorer = GaussianPerturbationExplorer(
            perturb_probability=1.0, decay_start=1.0, decay_end=0.1, anneal_steps=100
        )
        assert explorer.decay_factor == pytest.approx(1.0)
        for _ in range(100):
            explorer.step()
        assert explorer.decay_factor == pytest.approx(0.1)

    def test_gaussian_rank_returns_permutation(self):
        explorer = GaussianPerturbationExplorer(perturb_probability=0.5)
        ranking = explorer.rank(np.array([0.2, 0.9, 0.5]), np.random.default_rng(0))
        assert sorted(ranking.tolist()) == [0, 1, 2]

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            EpsilonGreedyExplorer(exploit_start=1.5)
        with pytest.raises(ValueError):
            GaussianPerturbationExplorer(perturb_probability=-0.1)


class TestAggregator:
    def test_weighted_sum_without_normalisation(self):
        aggregator = QValueAggregator(worker_weight=0.25, normalize=False)
        combined = aggregator.combine(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(combined, [0.25, 0.75])

    def test_single_objective_passthrough(self):
        aggregator = QValueAggregator(worker_weight=0.5)
        np.testing.assert_allclose(aggregator.combine(np.array([1.0, 2.0]), None), [1.0, 2.0])
        np.testing.assert_allclose(aggregator.combine(None, np.array([3.0, 4.0])), [3.0, 4.0])

    def test_both_none_raises(self):
        with pytest.raises(ValueError):
            QValueAggregator().combine(None, None)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            QValueAggregator().combine(np.zeros(3), np.zeros(4))

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            QValueAggregator(worker_weight=1.5)
        aggregator = QValueAggregator(0.5)
        with pytest.raises(ValueError):
            aggregator.worker_weight = -0.1

    def test_extreme_weights_follow_single_objective_ranking(self):
        aggregator = QValueAggregator(worker_weight=1.0)
        worker_q = np.array([0.1, 0.9, 0.5])
        requester_q = np.array([0.9, 0.1, 0.5])
        combined = aggregator.combine(worker_q, requester_q)
        assert np.argmax(combined) == np.argmax(worker_q)
        aggregator.worker_weight = 0.0
        combined = aggregator.combine(worker_q, requester_q)
        assert np.argmax(combined) == np.argmax(requester_q)


class TestDQNAgent:
    def test_store_and_train_respects_interval_and_minimum(self, schema):
        transformer = StateTransformer(schema)
        config = AgentConfig(
            hidden_dim=16, num_heads=2, batch_size=4, train_interval=2,
            min_buffer_before_training=4, seed=0,
        )
        agent = DQNAgent(transformer.row_dim, config)
        state = make_state(schema, transformer)
        transition = Transition(state=state, action_index=0, reward=1.0, future_states=[])
        reports = [agent.store_and_train(transition) for _ in range(8)]
        assert agent.diagnostics.observations == 8
        # No training before the buffer minimum, then one step every 2 observations.
        assert reports[0] is None and reports[1] is None and reports[2] is None
        assert agent.diagnostics.train_steps > 0

    def test_train_once_on_empty_memory(self, schema):
        transformer = StateTransformer(schema)
        agent = DQNAgent(transformer.row_dim, AgentConfig(hidden_dim=16, num_heads=2))
        assert agent.train_once() is None

    def test_uniform_replay_option(self, schema):
        transformer = StateTransformer(schema)
        agent = DQNAgent(
            transformer.row_dim,
            AgentConfig(hidden_dim=16, num_heads=2, prioritized_replay=False),
        )
        assert isinstance(agent.memory, ReplayMemory)


def build_platform_and_framework(schema, seed=0, **config_overrides):
    tasks = {
        i: Task(
            task_id=i,
            requester_id=0,
            category=i % schema.num_categories,
            domain=i % schema.num_domains,
            award=100.0 + 50.0 * i,
            created_at=0.0,
            deadline=100_000.0,
        )
        for i in range(6)
    }
    rng = np.random.default_rng(seed)
    workers = {
        i: Worker(
            worker_id=i,
            quality=0.6,
            category_preference=rng.dirichlet(np.ones(schema.num_categories)),
            domain_preference=rng.dirichlet(np.ones(schema.num_domains)),
            award_sensitivity=0.3,
        )
        for i in range(3)
    }
    platform = CrowdsourcingPlatform(
        tasks, workers, schema, CascadeBehavior(InterestModel()), seed=seed
    )
    defaults = dict(
        hidden_dim=16, num_heads=2, batch_size=4, train_interval=2,
        explorer_anneal_steps=50, seed=seed,
    )
    defaults.update(config_overrides)
    framework = TaskArrangementFramework(schema, FrameworkConfig(**defaults))
    return platform, framework


class TestTaskArrangementFramework:
    def test_requires_at_least_one_mdp(self, schema):
        with pytest.raises(ValueError):
            TaskArrangementFramework(
                schema, FrameworkConfig(use_worker_mdp=False, use_requester_mdp=False)
            )

    def test_rank_returns_all_available_tasks(self, schema):
        platform, framework = build_platform_and_framework(schema)
        for task_id in range(6):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        ranked = framework.rank_tasks(context)
        assert sorted(ranked) == list(range(6))

    def test_rank_empty_pool(self, schema):
        platform, framework = build_platform_and_framework(schema)
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        assert framework.rank_tasks(context) == []

    def test_feedback_stores_transitions_in_both_agents(self, schema):
        platform, framework = build_platform_and_framework(schema)
        for task_id in range(6):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        ranked = framework.rank_tasks(context)
        feedback = platform.submit_list(context, ranked)
        framework.observe_feedback(context, ranked, feedback)
        assert framework.agent_w.diagnostics.observations >= 1
        assert framework.agent_r.diagnostics.observations >= 1

    def test_worker_only_variant_has_single_agent(self, schema):
        framework = TaskArrangementFramework.worker_only(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2)
        )
        assert framework.agent_w is not None
        assert framework.agent_r is None
        assert framework.config.worker_weight == 1.0

    def test_requester_only_variant_has_single_agent(self, schema):
        framework = TaskArrangementFramework.requester_only(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2)
        )
        assert framework.agent_w is None
        assert framework.agent_r is not None

    def test_balanced_variant_sets_weight(self, schema):
        framework = TaskArrangementFramework.balanced(
            schema, worker_weight=0.25, config=FrameworkConfig(hidden_dim=16, num_heads=2)
        )
        assert framework.aggregator.worker_weight == pytest.approx(0.25)
        assert "0.25" in framework.name

    def test_reset_reinitialises_learning_state(self, schema):
        platform, framework = build_platform_and_framework(schema)
        for task_id in range(6):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        ranked = framework.rank_tasks(context)
        feedback = platform.submit_list(context, ranked)
        framework.observe_feedback(context, ranked, feedback)
        framework.reset()
        assert framework.agent_w.diagnostics.observations == 0
        assert len(framework.agent_w.memory) == 0

    def test_feedback_without_prior_rank_is_tolerated(self, schema):
        platform, framework = build_platform_and_framework(schema)
        for task_id in range(6):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        ranked = context.task_ids
        feedback = platform.submit_list(context, ranked)
        framework.observe_feedback(context, ranked, feedback)
        assert framework.agent_w.diagnostics.observations >= 1

    def test_online_learning_improves_ranking_of_preferred_tasks(self, schema):
        """After observing repeated completions of one category, its Q rises."""
        platform, framework = build_platform_and_framework(
            schema,
            perturb_probability=0.0,
            train_interval=1,
            batch_size=8,
            learning_rate=5e-3,
            use_requester_mdp=False,
        )
        for task_id in range(6):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        platform.behavior.interest_model.base_rate = 0.999
        # Worker 0 always completes task of category 0 (task ids 0 and 3).
        preferred_ids = {0, 3}
        timestamp = 5.0
        for _ in range(80):
            context = platform.apply_event(Event(timestamp, EventType.WORKER_ARRIVAL, 0))
            ranked = framework.rank_tasks(context)
            chosen = next(tid for tid in ranked if tid in preferred_ids)
            feedback = platform.submit_list(context, [chosen])
            framework.observe_feedback(context, [chosen], feedback)
            timestamp += 30.0
        context = platform.apply_event(Event(timestamp, EventType.WORKER_ARRIVAL, 0))
        state_w, _ = framework._build_states(context)
        q_values = framework.agent_w.q_values(state_w)
        preferred_scores = [q for tid, q in zip(state_w.task_ids, q_values) if tid in preferred_ids]
        other_scores = [q for tid, q in zip(state_w.task_ids, q_values) if tid not in preferred_ids]
        assert np.mean(preferred_scores) > np.mean(other_scores)
