"""Tests for the state transformer and the set Q-network."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SetQNetwork, StateTransformer
from repro.crowd import FeatureSchema
from repro.nn import Adam, Tensor, mse_loss


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=4, num_domains=3, award_bins=(100.0, 300.0))


def random_state(schema, transformer, num_tasks=5, seed=0, with_quality=False):
    rng = np.random.default_rng(seed)
    worker = rng.dirichlet(np.ones(schema.worker_dim))
    tasks = np.zeros((num_tasks, schema.task_dim))
    for row in range(num_tasks):
        tasks[row, rng.integers(0, schema.num_categories)] = 1.0
        tasks[row, schema.num_categories + rng.integers(0, schema.num_domains)] = 1.0
        tasks[row, schema.num_categories + schema.num_domains + rng.integers(0, schema.num_award_bins)] = 1.0
    kwargs = {}
    if with_quality:
        kwargs = {"worker_quality": 0.7, "task_qualities": rng.random(num_tasks)}
    return transformer.transform(worker, tasks, list(range(num_tasks)), **kwargs)


class TestStateTransformer:
    def test_row_dim_without_quality(self, schema):
        transformer = StateTransformer(schema, interaction=False)
        assert transformer.row_dim == schema.task_dim + schema.worker_dim

    def test_row_dim_with_interaction_and_quality(self, schema):
        transformer = StateTransformer(schema, include_quality=True, interaction=True)
        assert transformer.row_dim == 3 * schema.task_dim + 2

    def test_transform_shapes_without_padding(self, schema):
        transformer = StateTransformer(schema)
        state = random_state(schema, transformer, num_tasks=6)
        assert state.matrix.shape == (6, transformer.row_dim)
        assert state.mask.shape == (6,)
        assert not state.mask.any()
        assert state.task_ids == list(range(6))

    def test_transform_pads_to_max_tasks(self, schema):
        transformer = StateTransformer(schema, max_tasks=10)
        state = random_state(schema, transformer, num_tasks=4)
        assert state.matrix.shape == (10, transformer.row_dim)
        assert state.mask.sum() == 6
        np.testing.assert_allclose(state.matrix[4:], 0.0)

    def test_transform_truncates_overflow(self, schema):
        transformer = StateTransformer(schema, max_tasks=3)
        state = random_state(schema, transformer, num_tasks=5)
        assert state.num_tasks == 3
        assert state.task_ids == [0, 1, 2]

    def test_interaction_block_is_elementwise_product(self, schema):
        transformer = StateTransformer(schema, interaction=True)
        state = random_state(schema, transformer, num_tasks=3, seed=1)
        task_block = state.matrix[:, : schema.task_dim]
        worker_block = state.matrix[:, schema.task_dim : schema.task_dim + schema.worker_dim]
        interaction = state.matrix[:, schema.task_dim + schema.worker_dim :]
        np.testing.assert_allclose(interaction, task_block * worker_block[:, : schema.task_dim])

    def test_quality_columns_are_appended(self, schema):
        transformer = StateTransformer(schema, include_quality=True, interaction=False)
        state = random_state(schema, transformer, num_tasks=3, with_quality=True)
        assert np.allclose(state.matrix[:3, -2], 0.7)

    def test_quality_required_for_mdp_r(self, schema):
        transformer = StateTransformer(schema, include_quality=True)
        with pytest.raises(ValueError):
            random_state(schema, transformer, num_tasks=2, with_quality=False)

    def test_dimension_validation(self, schema):
        transformer = StateTransformer(schema)
        with pytest.raises(ValueError):
            transformer.transform(np.zeros(3), np.zeros((2, schema.task_dim)), [0, 1])
        with pytest.raises(ValueError):
            transformer.transform(
                np.zeros(schema.worker_dim), np.zeros((2, schema.task_dim + 1)), [0, 1]
            )
        with pytest.raises(ValueError):
            transformer.transform(np.zeros(schema.worker_dim), np.zeros((2, schema.task_dim)), [0])

    def test_replace_worker_feature_updates_worker_and_interaction(self, schema):
        transformer = StateTransformer(schema, interaction=True)
        state = random_state(schema, transformer, num_tasks=3, seed=2)
        new_worker = np.zeros(schema.worker_dim)
        new_worker[0] = 1.0
        updated = transformer.replace_worker_feature(state, new_worker)
        worker_block = updated.matrix[:, schema.task_dim : schema.task_dim + schema.worker_dim]
        np.testing.assert_allclose(worker_block, np.tile(new_worker, (3, 1)))
        interaction = updated.matrix[:, schema.task_dim + schema.worker_dim :]
        np.testing.assert_allclose(
            interaction, updated.matrix[:, : schema.task_dim] * new_worker[: schema.task_dim]
        )
        # Original untouched.
        assert not np.allclose(state.matrix, updated.matrix)

    def test_replace_task_quality(self, schema):
        transformer = StateTransformer(schema, include_quality=True)
        state = random_state(schema, transformer, num_tasks=3, with_quality=True)
        updated = transformer.replace_task_quality(state, task_id=1, new_quality=9.0)
        assert updated.matrix[1, -1] == 9.0
        assert state.matrix[1, -1] != 9.0

    def test_replace_task_quality_requires_quality_mode(self, schema):
        transformer = StateTransformer(schema, include_quality=False)
        state = random_state(schema, transformer, num_tasks=2)
        with pytest.raises(ValueError):
            transformer.replace_task_quality(state, 0, 1.0)

    def test_without_tasks_removes_rows_and_ids(self, schema):
        transformer = StateTransformer(schema)
        state = random_state(schema, transformer, num_tasks=4)
        smaller = state.without_tasks({1, 3})
        assert smaller.task_ids == [0, 2]
        assert smaller.num_tasks == 2
        np.testing.assert_allclose(smaller.matrix[0], state.matrix[0])
        np.testing.assert_allclose(smaller.matrix[1], state.matrix[2])


class TestSetQNetwork:
    def test_outputs_one_value_per_row(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        state = random_state(schema, transformer, num_tasks=7)
        assert network.q_values(state).shape == (7,)

    def test_empty_state_returns_empty_values(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2)
        state = transformer.transform(
            np.zeros(schema.worker_dim), np.zeros((0, schema.task_dim)), []
        )
        assert network.q_values(state).shape == (0,)
        assert network.max_q(state) == 0.0
        assert network.greedy_action(state) is None

    def test_padding_does_not_affect_real_q_values(self, schema):
        unpadded = StateTransformer(schema)
        padded = StateTransformer(schema, max_tasks=12)
        network = SetQNetwork(unpadded.row_dim, hidden_dim=16, num_heads=2, seed=1)
        state_a = random_state(schema, unpadded, num_tasks=5, seed=3)
        state_b = random_state(schema, padded, num_tasks=5, seed=3)
        np.testing.assert_allclose(
            network.q_values(state_a), network.q_values(state_b), atol=1e-8
        )

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=500), num_tasks=st.integers(min_value=2, max_value=8))
    def test_permutation_invariance_of_q_values(self, schema, seed, num_tasks):
        """Reordering the available tasks permutes the Q values identically."""
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        state = random_state(schema, transformer, num_tasks=num_tasks, seed=seed)
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(num_tasks)
        permuted = type(state)(
            matrix=state.matrix[permutation],
            mask=state.mask[permutation],
            task_ids=[state.task_ids[i] for i in permutation],
        )
        q_original = network.q_values(state)
        q_permuted = network.q_values(permuted)
        np.testing.assert_allclose(q_original[permutation], q_permuted, atol=1e-8)

    def test_q_values_depend_on_other_tasks_in_the_pool(self, schema):
        """The paper's point: tasks are competitive, so Q(s, t) is context-dependent."""
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=2)
        state_big = random_state(schema, transformer, num_tasks=6, seed=4)
        state_small = state_big.without_tasks(set(state_big.task_ids[3:]))
        q_big = network.q_values(state_big)[:3]
        q_small = network.q_values(state_small)
        assert not np.allclose(q_big, q_small)

    def test_greedy_action_is_argmax(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        state = random_state(schema, transformer, num_tasks=5)
        values = network.q_values(state)
        assert network.greedy_action(state) == int(np.argmax(values))
        assert network.max_q(state) == pytest.approx(values.max())

    def test_clone_copies_parameters(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        clone = network.clone()
        state = random_state(schema, transformer, num_tasks=4)
        np.testing.assert_allclose(network.q_values(state), clone.q_values(state))

    def test_rejects_invalid_input_dim(self):
        with pytest.raises(ValueError):
            SetQNetwork(0)

    def test_network_is_trainable(self, schema):
        """A few gradient steps reduce a supervised regression loss."""
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        optimizer = Adam(list(network.parameters()), lr=3e-3)
        rng = np.random.default_rng(0)
        states = [random_state(schema, transformer, num_tasks=5, seed=s) for s in range(10)]
        targets = [rng.random(5) for _ in range(10)]
        losses = []
        for _ in range(40):
            total = 0.0
            for state, target in zip(states, targets):
                values = network.forward(Tensor(state.matrix), mask=state.mask)
                loss = mse_loss(values, Tensor(target))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += loss.item()
            losses.append(total)
        assert losses[-1] < losses[0] * 0.7
