"""Bitwise guarantees of the replica-stacked execution engine.

The episode-vectorized platform's determinism contract (a vectorized replica
is float-for-float equal to its serial run) rests on properties of this
machine's BLAS/numpy that these tests pin explicitly:

* a stacked ``(N, m, k) @ (N, k, n)`` matmul equals the N separate 2-D
  matmuls bitwise;
* GEMM results are row-stable when the left operand gains extra rows
  (M-invariance, for M >= 2) — what lets the no-grad target forwards pad the
  *batch* axis across replicas;
* the stacked forward/backward mirrors (`repro.core.stacked.StackedForward`)
  reproduce the serial network's values and gradients exactly, and
* the fused group train step (`repro.core.vectorized.fused_train_steps`)
  leaves every agent in the exact state of its serial ``train_step``.

If any of these fail on a new platform, the vectorized runner's equality
tests would fail with it — these isolate the root cause.
"""

import numpy as np
import pytest

from repro.core.agent import AgentConfig, DQNAgent
from repro.core.qnetwork import SetQNetwork, pad_state_batch
from repro.core.replay import Transition
from repro.core.stacked import StackedForward, stack_signature, stackable
from repro.core.state import StateMatrix
from repro.core.vectorized import fused_q_values, fused_train_steps
from repro.nn import Tensor


def make_state(rng, rows, dim, min_tasks=1):
    real = int(rng.integers(min_tasks, rows + 1))
    matrix = np.zeros((rows, dim))
    matrix[:real] = rng.standard_normal((real, dim))
    mask = np.ones(rows, dtype=bool)
    mask[:real] = False
    return StateMatrix(matrix=matrix, mask=mask, task_ids=list(range(real)))


def make_transition(rng, rows, dim, branches=3):
    future = [
        (float(p), make_state(rng, rows, dim))
        for p in np.full(branches, 1.0 / branches)
    ]
    state = make_state(rng, rows, dim, min_tasks=2)
    return Transition(
        state=state,
        action_index=int(rng.integers(0, state.num_tasks)),
        reward=float(rng.random()),
        future_states=future,
    )


class TestEnvironmentAssumptions:
    """Numerical platform properties the stacked engine relies on."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_stacked_matmul_equals_per_slice_matmul(self, dtype):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 40, 17)).astype(dtype)
        b = rng.standard_normal((6, 17, 24)).astype(dtype)
        stacked = a @ b
        for i in range(a.shape[0]):
            assert np.array_equal(stacked[i], a[i] @ b[i])

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gemm_rows_are_m_invariant(self, dtype):
        """Row i of (A @ W) must not change when A gains rows (M >= 2)."""
        rng = np.random.default_rng(1)
        w = rng.standard_normal((90, 64)).astype(dtype)
        a = rng.standard_normal((200, 90)).astype(dtype)
        full = a @ w
        for m in (2, 3, 7, 32, 100):
            assert np.array_equal(np.ascontiguousarray(a[:m]) @ w, full[:m]), m

    def test_axis_reductions_are_slice_isomorphic(self):
        rng = np.random.default_rng(2)
        g = rng.standard_normal((5, 37, 12))
        assert np.array_equal(
            np.sum(g, axis=1), np.stack([g[i].sum(axis=0) for i in range(5)])
        )
        assert np.array_equal(
            g.sum(axis=-1), np.stack([g[i].sum(axis=-1) for i in range(5)])
        )


@pytest.fixture(params=["float64", "float32"])
def networks(request):
    return [
        SetQNetwork(input_dim=13, hidden_dim=16, num_heads=2, seed=seed, dtype=request.param)
        for seed in range(4)
    ]


class TestStackedForward:
    def test_stackable_requires_matching_architecture(self, networks):
        assert stackable(networks)
        other = SetQNetwork(input_dim=13, hidden_dim=32, num_heads=2)
        assert not stackable([networks[0], other])
        assert stack_signature(networks[0]) != stack_signature(other)
        with pytest.raises(ValueError, match="architecture"):
            StackedForward([networks[0], other])

    def test_single_mode_matches_serial_q_values_bitwise(self, networks):
        rng = np.random.default_rng(3)
        states = [make_state(rng, rows=9, dim=13) for _ in networks]
        stacked = StackedForward(networks)
        fused = stacked.q_values_single(states)
        for network, state, values in zip(networks, states, fused):
            assert np.array_equal(values, network.q_values(state))

    def test_infer_batch_matches_tensor_forward_bitwise(self, networks):
        """The raw-numpy inference mirror equals the autograd-graph mirror."""
        rng = np.random.default_rng(4)
        batches = [
            pad_state_batch([make_state(rng, 7, 13) for _ in range(5)], dtype=networks[0].dtype)
            for _ in networks
        ]
        with_graph = StackedForward(networks, requires_grad=True)
        inference = StackedForward(networks)
        assert np.array_equal(
            inference.infer_batch(batches), with_graph.forward_batch(batches).numpy()
        )

    def test_batch_mode_matches_serial_forward_batch_bitwise(self, networks):
        rng = np.random.default_rng(5)
        state_lists = [[make_state(rng, 8, 13) for _ in range(6)] for _ in networks]
        batches = [
            pad_state_batch(states, dtype=networks[0].dtype) for states in state_lists
        ]
        fused = StackedForward(networks).infer_batch(batches)
        for i, (network, states) in enumerate(zip(networks, state_lists)):
            assert np.array_equal(fused[i], network.forward_batch(states).numpy())

    def test_gradients_match_serial_backward_bitwise(self, networks):
        rng = np.random.default_rng(6)
        state_lists = [[make_state(rng, 8, 13) for _ in range(5)] for _ in networks]
        serial_grads = []
        for network, states in zip(networks, state_lists):
            for param in network.parameters():
                param.zero_grad()
            values = network.forward_batch(states)
            (values * values).mean().backward()
            serial_grads.append(
                {name: param.grad.copy() for name, param in network.named_parameters()}
            )
            for param in network.parameters():
                param.zero_grad()

        stacked = StackedForward(networks, requires_grad=True)
        out = stacked.forward_batch(
            [pad_state_batch(states, dtype=networks[0].dtype) for states in state_lists]
        )
        losses = [(row * row).mean() for row in out.unbind(0)]
        Tensor.stack(losses, axis=0).sum().backward()
        stacked.scatter_gradients()
        for network, expected in zip(networks, serial_grads):
            for name, param in network.named_parameters():
                assert np.array_equal(param.grad, expected[name]), name
            for param in network.parameters():
                param.zero_grad()


class TestFusedQValues:
    def test_mixed_shapes_fall_back_per_pair(self):
        rng = np.random.default_rng(7)
        nets = [SetQNetwork(13, hidden_dim=16, num_heads=2, seed=s) for s in range(3)]
        jobs = [
            (nets[0], make_state(rng, 9, 13)),
            (nets[1], make_state(rng, 9, 13)),
            (nets[2], make_state(rng, 5, 13)),  # different shape: serial path
        ]
        fused = fused_q_values(jobs)
        for (network, state), values in zip(jobs, fused):
            assert np.array_equal(values, network.q_values(state))


class TestFusedTrainSteps:
    def build_agents(self, count, rng, rows=8, dim=13, batch_size=4, dtype="float64"):
        agents = [
            DQNAgent(
                dim,
                AgentConfig(
                    hidden_dim=16, num_heads=2, batch_size=batch_size, seed=seed, dtype=dtype
                ),
            )
            for seed in range(count)
        ]
        for agent in agents:
            for _ in range(batch_size + 12):
                agent.store(make_transition(rng, rows, dim))
        return agents

    def clone_states(self, agents):
        return [
            {
                "learner": {
                    name: value.copy()
                    for name, value in agent.learner.online.state_dict().items()
                },
                "rng": agent.memory.rng.bit_generator.state,
            }
            for agent in agents
        ]

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_group_step_is_bitwise_equal_to_serial_steps(self, dtype):
        rng = np.random.default_rng(8)
        fused_agents = self.build_agents(4, rng, dtype=dtype)
        rng = np.random.default_rng(8)
        serial_agents = self.build_agents(4, rng, dtype=dtype)

        for _ in range(3):
            fused_train_steps(fused_agents)
            for agent in serial_agents:
                agent.record_report(agent.learner.train_step(agent.memory))

        for fused_agent, serial_agent in zip(fused_agents, serial_agents):
            fused_state = fused_agent.learner.state_dict()
            serial_state = serial_agent.learner.state_dict()
            for key in ("online", "target"):
                for name in fused_state[key]:
                    assert np.array_equal(fused_state[key][name], serial_state[key][name]), (
                        key,
                        name,
                    )
            assert fused_agent.memory.rng.bit_generator.state == (
                serial_agent.memory.rng.bit_generator.state
            )
            assert fused_agent.diagnostics.train_steps == serial_agent.diagnostics.train_steps
            assert fused_agent.diagnostics.losses == serial_agent.diagnostics.losses

    def test_mixed_architectures_split_into_groups(self):
        rng = np.random.default_rng(9)
        small = self.build_agents(2, rng)
        rng2 = np.random.default_rng(10)
        wide = [
            DQNAgent(13, AgentConfig(hidden_dim=32, num_heads=2, batch_size=4, seed=7))
        ]
        for _ in range(16):
            wide[0].store(make_transition(rng2, 8, 13))
        rng = np.random.default_rng(9)
        small_reference = self.build_agents(2, rng)
        rng2 = np.random.default_rng(10)
        wide_reference = [
            DQNAgent(13, AgentConfig(hidden_dim=32, num_heads=2, batch_size=4, seed=7))
        ]
        for _ in range(16):
            wide_reference[0].store(make_transition(rng2, 8, 13))

        fused_train_steps(small + wide)
        for agent in small_reference + wide_reference:
            agent.learner.train_step(agent.memory)
        for fused_agent, serial_agent in zip(small + wide, small_reference + wide_reference):
            fused_params = fused_agent.learner.online.state_dict()
            serial_params = serial_agent.learner.online.state_dict()
            for name in fused_params:
                assert np.array_equal(fused_params[name], serial_params[name]), name
