"""Cross-cutting integration tests: policy interface contract for the framework,
checkpointing of trained Q-networks, and package metadata."""

import numpy as np
import pytest

import repro
from repro.core import FrameworkConfig, SetQNetwork, StateTransformer, TaskArrangementFramework
from repro.core.interfaces import ArrangementPolicy
from repro.crowd import FeatureSchema
from repro.nn import load_module, save_module


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=3, num_domains=2, award_bins=(100.0,))


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_subpackages_are_importable(self):
        for name in ("nn", "crowd", "datasets", "core", "baselines", "eval"):
            assert hasattr(repro, name)

    def test_framework_is_an_arrangement_policy(self, schema):
        framework = TaskArrangementFramework.worker_only(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2)
        )
        assert isinstance(framework, ArrangementPolicy)

    def test_framework_names_identify_variants(self, schema):
        config = FrameworkConfig(hidden_dim=16, num_heads=2)
        worker_only = TaskArrangementFramework.worker_only(schema, config)
        balanced = TaskArrangementFramework.balanced(schema, 0.5, config)
        assert worker_only.name == "DDQN"
        assert "0.5" in balanced.name


class TestCheckpointing:
    def test_trained_qnetwork_round_trips_through_disk(self, schema, tmp_path):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=0)
        rng = np.random.default_rng(0)
        worker = rng.dirichlet(np.ones(schema.worker_dim))
        tasks = np.zeros((4, schema.task_dim))
        tasks[np.arange(4), rng.integers(0, schema.num_categories, size=4)] = 1.0
        state = transformer.transform(worker, tasks, [0, 1, 2, 3])
        expected = network.q_values(state)

        path = save_module(network, tmp_path / "q.npz")
        restored = SetQNetwork(transformer.row_dim, hidden_dim=16, num_heads=2, seed=99)
        load_module(restored, path)
        np.testing.assert_allclose(restored.q_values(state), expected)

    def test_framework_agents_share_no_parameters(self, schema):
        framework = TaskArrangementFramework(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2)
        )
        worker_params = {id(p) for p in framework.agent_w.network.parameters()}
        requester_params = {id(p) for p in framework.agent_r.network.parameters()}
        assert worker_params.isdisjoint(requester_params)
