"""The decoupled trainer loops: snapshot decisions + background training.

Async training is deliberately *not* bit-identical to serial (decisions see
published, slightly stale parameters; the free-running trainer amortises
cadence steps it cannot keep up with).  What these tests pin down instead:

* :class:`SnapshotNetwork` forwards are bitwise equal to the live network —
  the decision path never changes *what* is computed, only *which* frozen
  parameters it reads;
* :class:`SyncTrainer` is exactly the historical inline ``store_and_train``
  path (the exact-equality reference);
* the fixed-schedule (``handoff_lag``) mode executes plans with full serial
  semantics — lag 0 is bit-identical to synchronous training;
* the trainer thread never deadlocks on early termination and surfaces its
  exceptions on the main thread.
"""

import numpy as np
import pytest

from repro.core import AsyncTrainer, SnapshotNetwork, SyncTrainer
from repro.core.agent import AgentConfig, DQNAgent
from repro.core.replay import Transition
from repro.core.state import StateMatrix

FEATURE_DIM = 6

AGENT_CONFIG = dict(
    hidden_dim=8,
    num_heads=2,
    batch_size=4,
    train_interval=2,
    min_buffer_before_training=2,
)


def make_agent(seed: int = 0, **overrides) -> DQNAgent:
    return DQNAgent(FEATURE_DIM, AgentConfig(**{**AGENT_CONFIG, **overrides, "seed": seed}))


def make_state(rng: np.random.Generator, num_tasks: int = 3) -> StateMatrix:
    matrix = rng.standard_normal((num_tasks, FEATURE_DIM))
    return StateMatrix(
        matrix=matrix, mask=np.zeros(num_tasks, bool), task_ids=list(range(num_tasks))
    )


def make_transition(rng: np.random.Generator) -> Transition:
    future = [(0.6, make_state(rng)), (0.3, make_state(rng, num_tasks=2))]
    return Transition(
        state=make_state(rng),
        action_index=int(rng.integers(0, 3)),
        reward=float(rng.uniform(-1.0, 1.0)),
        future_states=future,
    )


def make_plans(count: int, agent: DQNAgent, seed: int = 3) -> list:
    rng = np.random.default_rng(seed)
    return [[(agent, [make_transition(rng)])] for _ in range(count)]


def flat_params(agent: DQNAgent) -> np.ndarray:
    optimizer = agent.learner.optimizer
    optimizer._adopt_strays()
    return optimizer._flat_params.copy()


class TestSnapshotNetwork:
    def test_q_values_bitwise_equal_to_live_network(self):
        agent = make_agent()
        snapshot = SnapshotNetwork(agent)
        rng = np.random.default_rng(1)
        for num_tasks in (1, 3, 7):
            state = make_state(rng, num_tasks=num_tasks)
            np.testing.assert_array_equal(snapshot.q_values(state), agent.q_values(state))

    def test_q_values_batch_bitwise_equal_to_live_network(self):
        agent = make_agent()
        snapshot = SnapshotNetwork(agent)
        rng = np.random.default_rng(2)
        states = [make_state(rng, num_tasks=n) for n in (2, 5, 1, 4)]
        for mirror, live in zip(snapshot.q_values_batch(states), agent.q_values_batch(states)):
            np.testing.assert_array_equal(mirror, live)

    def test_snapshot_is_frozen_until_refreshed(self):
        agent = make_agent()
        snapshot = SnapshotNetwork(agent)
        rng = np.random.default_rng(3)
        state = make_state(rng)
        before = snapshot.q_values(state).copy()
        for plan in make_plans(8, agent):
            SyncTrainer().submit(plan)
        assert agent.diagnostics.train_steps > 0
        # Training moved the live network; the snapshot still serves the old
        # parameters until an explicit refresh.
        np.testing.assert_array_equal(snapshot.q_values(state), before)
        assert not np.array_equal(agent.q_values(state), before)
        snapshot.refresh()
        np.testing.assert_array_equal(snapshot.q_values(state), agent.q_values(state))

    def test_empty_state_matches_live_network(self):
        agent = make_agent()
        snapshot = SnapshotNetwork(agent)
        empty = StateMatrix(
            matrix=np.zeros((0, FEATURE_DIM)), mask=np.zeros(0, bool), task_ids=[]
        )
        np.testing.assert_array_equal(snapshot.q_values(empty), agent.q_values(empty))
        assert snapshot.q_values_batch([]) == []


class TestSyncTrainer:
    def test_matches_inline_store_and_train_bitwise(self):
        inline, via_trainer = make_agent(seed=5), make_agent(seed=5)
        trainer = SyncTrainer()
        rng = np.random.default_rng(7)
        for _ in range(10):
            transition = make_transition(rng)
            inline.store_and_train(transition)
            trainer.submit([(via_trainer, [transition])])
        assert inline.diagnostics.train_steps == via_trainer.diagnostics.train_steps > 0
        np.testing.assert_array_equal(flat_params(inline), flat_params(via_trainer))


class TestAsyncTrainerFixedSchedule:
    def test_lag_zero_is_bit_identical_to_sync(self):
        sync_agent, async_agent = make_agent(seed=9), make_agent(seed=9)
        sync = SyncTrainer()
        trainer = AsyncTrainer([async_agent], handoff_lag=0)
        try:
            for sync_plan, async_plan in zip(
                make_plans(12, sync_agent), make_plans(12, async_agent)
            ):
                sync.submit(sync_plan)
                trainer.submit(async_plan)
                trainer.before_decision()
                # Lag 0: the barrier consumed everything submitted so far with
                # full serial semantics, so the live parameters agree exactly.
                np.testing.assert_array_equal(
                    flat_params(sync_agent), flat_params(async_agent)
                )
                rng = np.random.default_rng(async_agent.diagnostics.observations)
                state = make_state(rng)
                np.testing.assert_array_equal(
                    trainer.q_values(async_agent, state), sync_agent.q_values(state)
                )
        finally:
            trainer.close()
        assert sync_agent.diagnostics.train_steps == async_agent.diagnostics.train_steps > 0

    def test_same_schedule_twice_is_exactly_reproducible(self):
        finals = []
        for _ in range(2):
            agent = make_agent(seed=11)
            trainer = AsyncTrainer([agent], handoff_lag=2)
            try:
                for plan in make_plans(15, agent):
                    trainer.submit(plan)
                    trainer.before_decision()
                trainer.drain()
            finally:
                trainer.close()
            finals.append((flat_params(agent), agent.diagnostics.train_steps))
        np.testing.assert_array_equal(finals[0][0], finals[1][0])
        assert finals[0][1] == finals[1][1] > 0

    def test_barrier_consumes_exactly_submitted_minus_lag(self):
        agent = make_agent(seed=13)
        trainer = AsyncTrainer([agent], handoff_lag=3)
        try:
            for index, plan in enumerate(make_plans(10, agent), start=1):
                trainer.submit(plan)
                trainer.before_decision()
                assert trainer.stats()["plans_consumed"] == max(0, index - 3)
            trainer.drain()
            assert trainer.stats()["plans_consumed"] == 10
        finally:
            trainer.close()


class TestAsyncTrainerFreeRunning:
    def test_drain_trains_and_publishes(self):
        agent = make_agent(seed=15)
        trainer = AsyncTrainer([agent], queue_size=4)
        try:
            for plan in make_plans(20, agent):
                trainer.submit(plan)
                trainer.before_decision()
            trainer.drain()
            stats = trainer.stats()
            assert stats["plans_submitted"] == stats["plans_consumed"] == 20
            assert stats["train_steps"] > 0
            assert stats["mode"] == "free"
            # Every observation was stored even where cadence steps were
            # amortised away.
            assert agent.diagnostics.observations == 20
            rng = np.random.default_rng(17)
            state = make_state(rng)
            # drain() republished: the snapshot serves the live parameters.
            np.testing.assert_array_equal(
                trainer.q_values(agent, state), agent.q_values(state)
            )
        finally:
            trainer.close()

    def test_amortised_steps_are_counted_never_owed(self):
        agent = make_agent(seed=19, train_interval=1)
        trainer = AsyncTrainer([agent], queue_size=64)
        try:
            for plan in make_plans(30, agent):
                trainer.submit(plan)
            trainer.drain()
            stats = trainer.stats()
            # Cadence 1 over 30 observations is 30 due steps; bulk drains run
            # at most one per cycle and drop the rest as skipped.
            assert stats["train_steps"] + stats["skipped_steps"] <= 30
            assert stats["train_steps"] >= 1
        finally:
            trainer.close()


class TestAsyncTrainerLifecycle:
    def test_close_is_idempotent_and_never_deadlocks(self):
        agent = make_agent(seed=21)
        trainer = AsyncTrainer([agent])
        for plan in make_plans(5, agent):
            trainer.submit(plan)
        # Early termination: close with a non-empty queue must finish the
        # queued plans and join the thread (a hang here fails via timeout).
        trainer.close()
        trainer.close()
        assert trainer.stats()["plans_consumed"] == 5
        with pytest.raises(RuntimeError, match="closed"):
            trainer.submit(make_plans(1, agent)[0])

    def test_trainer_exception_surfaces_on_the_main_thread(self):
        agent = make_agent(seed=23)
        trainer = AsyncTrainer([agent])

        class Exploding:
            def __iter__(self):
                raise ValueError("boom in trainer thread")

        trainer.submit([(agent, Exploding())])
        with pytest.raises(RuntimeError, match="async trainer thread failed"):
            trainer.drain()
        # Every subsequent call keeps re-raising instead of hanging.
        with pytest.raises(RuntimeError, match="async trainer thread failed"):
            trainer.submit(make_plans(1, agent)[0])
        with pytest.raises(RuntimeError, match="async trainer thread failed"):
            trainer.close()

    def test_constructor_validation(self):
        agent = make_agent(seed=25)
        with pytest.raises(ValueError, match="queue_size"):
            AsyncTrainer([agent], queue_size=0)
        with pytest.raises(ValueError, match="publish_interval"):
            AsyncTrainer([agent], publish_interval=0)
        with pytest.raises(ValueError, match="handoff_lag"):
            AsyncTrainer([agent], handoff_lag=-1)
