"""Checkpoint config migration: old checkpoints keep loading as config grows.

A checkpoint written before :class:`FrameworkConfig` gained a field carries a
config tree without that key; :func:`repro.core.migrate_config_tree` fills
such gaps with the current dataclass defaults (after applying any per-format
migration steps), while still rejecting truly unknown keys and unsupported
formats loudly.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core import (
    CHECKPOINT_FORMAT,
    FrameworkConfig,
    TaskArrangementFramework,
    migrate_config_tree,
)
from repro.crowd import FeatureSchema
from repro.nn import load_checkpoint, save_checkpoint

TINY = dict(hidden_dim=8, num_heads=2, batch_size=4, seed=3)


@pytest.fixture()
def schema():
    return FeatureSchema(num_categories=3, num_domains=2, award_bins=(10.0, 100.0))


class TestMigrateConfigTree:
    def test_full_current_tree_round_trips(self):
        config = FrameworkConfig(**TINY)
        assert migrate_config_tree(asdict(config), CHECKPOINT_FORMAT) == config

    def test_missing_fields_fall_back_to_defaults(self):
        """Simulates a checkpoint from before newer fields existed."""
        tree = asdict(FrameworkConfig(**TINY))
        del tree["train_interval"]
        del tree["dtype"]
        config = migrate_config_tree(tree, CHECKPOINT_FORMAT)
        assert config.train_interval == FrameworkConfig().train_interval
        assert config.dtype == FrameworkConfig().dtype
        assert config.hidden_dim == TINY["hidden_dim"]

    def test_unknown_keys_are_rejected(self):
        tree = asdict(FrameworkConfig(**TINY))
        tree["obsolete_knob"] = 1
        with pytest.raises(ValueError, match="unknown keys.*obsolete_knob"):
            migrate_config_tree(tree, CHECKPOINT_FORMAT)

    def test_unsupported_format_is_rejected(self):
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            migrate_config_tree(asdict(FrameworkConfig(**TINY)), "repro.framework/1")


class TestFrameworkLoadMigration:
    def test_checkpoint_with_missing_config_keys_loads(self, schema, tmp_path):
        """An on-disk checkpoint missing later-added config fields restores."""
        framework = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        path = framework.save(tmp_path / "old.npz")
        tree = load_checkpoint(path)
        # Rewrite the file as an older writer would have produced it: the
        # same format tag, but a config vocabulary without train_interval.
        del tree["config"]["train_interval"]
        save_checkpoint(tree, path)

        restored = TaskArrangementFramework.load(path)
        assert restored.config.train_interval == FrameworkConfig().train_interval
        assert restored.config.hidden_dim == TINY["hidden_dim"]
        state = framework.state_dict()
        restored_state = restored.state_dict()
        for name in state["agent_w"]["learner"]["online"]:
            assert np.array_equal(
                state["agent_w"]["learner"]["online"][name],
                restored_state["agent_w"]["learner"]["online"][name],
            )

    def test_checkpoint_with_unknown_config_key_is_rejected(self, schema, tmp_path):
        framework = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        path = framework.save(tmp_path / "bogus.npz")
        tree = load_checkpoint(path)
        tree["config"]["not_a_field"] = 42
        save_checkpoint(tree, path)
        with pytest.raises(ValueError, match="not_a_field"):
            TaskArrangementFramework.load(path)
