"""Full-framework checkpoint round-trips.

The two acceptance-level guarantees:

* a framework saved mid-training and reloaded produces **identical rankings**
  on held-out contexts, and
* the optimizer-state round-trip continues training **bit-identically** for
  at least three further gradient steps (networks, Adam moments, replay
  sampling and exploration RNG all resume exactly).
"""

import numpy as np
import pytest

from repro.api import build_policy
from repro.core import FrameworkConfig, TaskArrangementFramework
from repro.crowd.entities import MINUTES_PER_DAY
from repro.crowd.platform import ArrivalContext, Feedback
from repro.datasets import scalability_snapshot
from repro.eval import RunnerConfig, SimulationRunner
from repro.nn import load_checkpoint, save_checkpoint


@pytest.fixture(scope="module")
def snapshot():
    tasks, worker, schema = scalability_snapshot(8, seed=3)
    features = np.stack([schema.task_features(task) for task in tasks])
    return tasks, worker, schema, features


def make_context(snapshot, timestamp: float) -> ArrivalContext:
    tasks, worker, schema, features = snapshot
    return ArrivalContext(
        timestamp=timestamp,
        worker=worker,
        worker_feature=schema.empty_worker_features(),
        available_tasks=list(tasks),
        task_features=features,
        task_qualities=np.zeros(len(tasks)),
    )


def drive(framework, snapshot, start: float, steps: int) -> None:
    """Feed ``steps`` synthetic arrivals; the completed task is the top rank."""
    _, worker, _, _ = snapshot
    for i in range(steps):
        context = make_context(snapshot, start + i * 7.0)
        ranked = framework.rank_tasks(context)
        feedback = Feedback(
            timestamp=context.timestamp,
            worker_id=worker.worker_id,
            presented_task_ids=ranked,
            completed_task_id=ranked[0],
            completed_rank=0,
            completion_reward=1.0,
            quality_gain=0.4,
            updated_worker_feature=context.worker_feature,
        )
        framework.observe_feedback(context, ranked, feedback)


def trained_framework(snapshot, steps: int = 40) -> TaskArrangementFramework:
    _, _, schema, _ = snapshot
    framework = TaskArrangementFramework(
        schema,
        FrameworkConfig(hidden_dim=16, num_heads=2, batch_size=8, train_interval=1, seed=5),
    )
    drive(framework, snapshot, MINUTES_PER_DAY, steps)
    return framework


def assert_parameters_equal(a, b):
    for (name_a, param_a), (_, param_b) in zip(
        a.named_parameters(), b.named_parameters()
    ):
        assert np.array_equal(param_a.data, param_b.data), name_a


class TestNestedCheckpointFormat:
    def test_nested_tree_round_trips(self, tmp_path):
        tree = {
            "format": "demo/1",
            "arrays": {"weights": np.arange(6.0).reshape(2, 3), "empty": np.zeros(0)},
            "meta": {"count": 3, "rate": 0.25, "label": "x", "none": None, "flag": True},
            "big_int": 2**100,
            "empty_group": {},
        }
        loaded = load_checkpoint(save_checkpoint(tree, tmp_path / "tree.npz"))
        assert loaded["format"] == "demo/1"
        np.testing.assert_array_equal(loaded["arrays"]["weights"], tree["arrays"]["weights"])
        assert loaded["arrays"]["empty"].size == 0
        assert loaded["meta"] == tree["meta"]
        assert loaded["big_int"] == 2**100
        assert loaded["empty_group"] == {}

    def test_reserved_and_malformed_keys_raise(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint({"__json__": 1}, tmp_path / "bad.npz")
        with pytest.raises(ValueError, match="'/'-free"):
            save_checkpoint({"a/b": 1}, tmp_path / "bad.npz")

    def test_loading_a_flat_state_dict_is_rejected(self, tmp_path):
        np.savez(tmp_path / "flat.npz", weights=np.ones(3))
        with pytest.raises(ValueError, match="not a nested checkpoint"):
            load_checkpoint(tmp_path / "flat.npz")


class TestFrameworkRoundTrip:
    def test_rankings_identical_on_held_out_contexts(self, snapshot, tmp_path):
        framework = trained_framework(snapshot)
        path = framework.save(tmp_path / "framework.npz")
        restored = TaskArrangementFramework.load(path)

        assert restored.name == framework.name
        assert restored.config == framework.config
        assert_parameters_equal(framework.agent_w.network, restored.agent_w.network)
        assert_parameters_equal(framework.agent_r.network, restored.agent_r.network)
        assert_parameters_equal(framework.agent_w.learner.target, restored.agent_w.learner.target)

        for offset in (0.0, 123.0, 9_000.0):
            context = make_context(snapshot, MINUTES_PER_DAY + 5_000.0 + offset)
            assert framework.rank_tasks(context) == restored.rank_tasks(context)

    def test_training_continues_bit_identically(self, snapshot, tmp_path):
        framework = trained_framework(snapshot)
        path = framework.save(tmp_path / "framework.npz")
        restored = TaskArrangementFramework.load(path)
        steps_before = framework.agent_w.diagnostics.train_steps

        # ≥3 further gradient steps on both instances (train_interval=1, so
        # every arrival trains both agents).
        drive(framework, snapshot, MINUTES_PER_DAY + 2_000.0, 5)
        drive(restored, snapshot, MINUTES_PER_DAY + 2_000.0, 5)

        assert framework.agent_w.diagnostics.train_steps >= steps_before + 3
        assert (
            framework.agent_w.diagnostics.train_steps
            == restored.agent_w.diagnostics.train_steps
        )
        assert framework.agent_w.diagnostics.losses == restored.agent_w.diagnostics.losses
        for original, loaded in (
            (framework.agent_w, restored.agent_w),
            (framework.agent_r, restored.agent_r),
        ):
            assert_parameters_equal(original.network, loaded.network)
            assert_parameters_equal(original.learner.target, loaded.learner.target)
            assert original.learner.updates == loaded.learner.updates
            optimizer_a = original.learner.optimizer.state_dict()
            optimizer_b = loaded.learner.optimizer.state_dict()
            assert optimizer_a["step_count"] == optimizer_b["step_count"]
            for key, moment in optimizer_a["first_moment"].items():
                assert np.array_equal(moment, optimizer_b["first_moment"][key])

        context = make_context(snapshot, MINUTES_PER_DAY + 50_000.0)
        assert framework.rank_tasks(context) == restored.rank_tasks(context)

    def test_restored_explorer_and_replay_state(self, snapshot, tmp_path):
        framework = trained_framework(snapshot, steps=25)
        path = framework.save(tmp_path / "framework.npz")
        restored = TaskArrangementFramework.load(path)

        assert restored.explorer._steps == framework.explorer._steps
        assert restored.assign_explorer._steps == framework.assign_explorer._steps
        assert len(restored.agent_w.memory) == len(framework.agent_w.memory)
        assert restored.agent_w.memory.beta == framework.agent_w.memory.beta
        assert restored.rng.bit_generator.state == framework.rng.bit_generator.state
        stats_a = framework.arrival_statistics
        stats_b = restored.arrival_statistics
        assert stats_a.total_arrivals == stats_b.total_arrivals
        assert stats_a.last_arrival_by_worker == stats_b.last_arrival_by_worker
        np.testing.assert_array_equal(
            stats_a.same_worker_gaps._counts, stats_b.same_worker_gaps._counts
        )

    def test_mismatched_variant_is_rejected(self, snapshot, tmp_path):
        _, _, schema, _ = snapshot
        worker_only = TaskArrangementFramework.worker_only(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2, seed=0)
        )
        both = TaskArrangementFramework(
            schema, FrameworkConfig(hidden_dim=16, num_heads=2, seed=0)
        )
        with pytest.raises(ValueError, match="agent_r"):
            both.load_state_dict(worker_only.state_dict())

    def test_non_framework_file_is_rejected(self, tmp_path):
        path = save_checkpoint({"format": "other/1"}, tmp_path / "other.npz")
        with pytest.raises(ValueError, match="not a framework checkpoint"):
            TaskArrangementFramework.load(path)


#: All checkpointable registry variants (builder kwargs on top of the tiny
#: framework config).  ``ddqn-checkpoint`` is the *consumer* of these files
#: and is exercised in TestCheckpointRegistryEntry below.
FRAMEWORK_VARIANTS = [
    ("ddqn", {"worker_weight": 0.25}),
    ("ddqn-worker", {}),
    ("ddqn-requester", {}),
]

TINY_FRAMEWORK = {"hidden_dim": 16, "num_heads": 2, "batch_size": 8, "train_interval": 1, "seed": 5}


class TestAllVariantsInterruptResume:
    """Interrupt-at-arrival-N round-trips for every framework registry entry.

    An uninterrupted 40-step run must be indistinguishable from a run that is
    interrupted at step 30, checkpointed, reloaded into a fresh process-like
    state and driven through the same final 10 arrivals.
    """

    def variant(self, snapshot, name, extra):
        _, _, schema, _ = snapshot
        from repro.api import build_policy

        return build_policy(name, schema, **TINY_FRAMEWORK, **extra)

    @pytest.mark.parametrize("name,extra", FRAMEWORK_VARIANTS)
    def test_interrupted_run_finishes_identically(self, snapshot, tmp_path, name, extra):
        uninterrupted = self.variant(snapshot, name, extra)
        drive(uninterrupted, snapshot, MINUTES_PER_DAY, 40)

        interrupted = self.variant(snapshot, name, extra)
        drive(interrupted, snapshot, MINUTES_PER_DAY, 30)
        path = interrupted.save(tmp_path / f"{name}.npz")
        restored = TaskArrangementFramework.load(path)
        # Finish the exact arrivals the uninterrupted run saw after step 30.
        drive(restored, snapshot, MINUTES_PER_DAY + 30 * 7.0, 10)

        for agent_name in ("agent_w", "agent_r"):
            original = getattr(uninterrupted, agent_name)
            loaded = getattr(restored, agent_name)
            assert (original is None) == (loaded is None)
            if original is None:
                continue
            assert_parameters_equal(original.network, loaded.network)
            assert_parameters_equal(original.learner.target, loaded.learner.target)
            assert original.diagnostics.train_steps == loaded.diagnostics.train_steps
            assert original.diagnostics.losses == loaded.diagnostics.losses
        assert restored.explorer._steps == uninterrupted.explorer._steps
        context = make_context(snapshot, MINUTES_PER_DAY + 40_000.0)
        assert uninterrupted.rank_tasks(context) == restored.rank_tasks(context)

    @pytest.mark.parametrize("name,extra", FRAMEWORK_VARIANTS)
    def test_registry_variants_support_checkpointing(self, snapshot, name, extra):
        assert self.variant(snapshot, name, extra).supports_checkpointing

    def test_baselines_do_not_claim_checkpointing(self, snapshot):
        from repro.api import build_policy

        _, _, schema, _ = snapshot
        policy = build_policy("random", schema, seed=0)
        assert not policy.supports_checkpointing
        with pytest.raises(NotImplementedError, match="does not support checkpointing"):
            policy.save("nowhere.npz")


class TestRunnerAutoCheckpointing:
    """The SimulationRunner's periodic save hook (checkpoint_every)."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.datasets import generate_crowdspring

        return generate_crowdspring(scale=0.03, num_months=2, seed=1)

    def tiny_policy(self, dataset):
        return build_policy(
            "ddqn-worker", dataset, hidden_dim=16, num_heads=2, batch_size=8,
            train_interval=4, seed=0,
        )

    def test_periodic_saves_leave_the_final_state_on_disk(self, dataset, tmp_path):
        path = tmp_path / "auto.npz"
        runner = SimulationRunner(
            dataset, RunnerConfig(seed=0, max_arrivals=25, checkpoint_every=10)
        )
        policy = self.tiny_policy(dataset)
        result = runner.run(policy, checkpoint_path=path)
        assert result.arrivals == 25
        assert path.exists()
        restored = TaskArrangementFramework.load(path)
        # The final save happens after the last arrival, so the file holds the
        # fully-trained state.
        assert_parameters_equal(policy.agent_w.network, restored.agent_w.network)
        assert (
            restored.agent_w.diagnostics.train_steps
            == policy.agent_w.diagnostics.train_steps
        )

    def test_checkpointing_does_not_perturb_the_run(self, dataset, tmp_path):
        plain = SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=25)).run(
            self.tiny_policy(dataset)
        )
        checkpointed = SimulationRunner(
            dataset, RunnerConfig(seed=0, max_arrivals=25, checkpoint_every=7)
        ).run(self.tiny_policy(dataset), checkpoint_path=tmp_path / "auto.npz")
        assert checkpointed.cr.monthly == plain.cr.monthly
        assert checkpointed.qg.monthly == plain.qg.monthly
        assert checkpointed.completions == plain.completions

    def test_non_checkpointable_policies_are_skipped_silently(self, dataset, tmp_path):
        path = tmp_path / "never.npz"
        runner = SimulationRunner(
            dataset, RunnerConfig(seed=0, max_arrivals=10, checkpoint_every=2)
        )
        result = runner.run(build_policy("random", dataset, seed=0), checkpoint_path=path)
        assert result.arrivals == 10
        assert not path.exists()

    def test_no_save_without_a_path(self, dataset, tmp_path):
        runner = SimulationRunner(
            dataset, RunnerConfig(seed=0, max_arrivals=10, checkpoint_every=2)
        )
        result = runner.run(self.tiny_policy(dataset))
        assert result.arrivals == 10
        assert list(tmp_path.iterdir()) == []

    def test_invalid_checkpoint_every_is_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            RunnerConfig(checkpoint_every=0)


class TestCheckpointRegistryEntry:
    def test_ddqn_checkpoint_policy_restores_the_trained_state(self, tmp_path):
        from repro.datasets import generate_crowdspring

        dataset = generate_crowdspring(scale=0.03, num_months=2, seed=1)
        trained = build_policy(
            "ddqn-worker", dataset, hidden_dim=16, num_heads=2, batch_size=8,
            train_interval=4, seed=0,
        )
        runner = SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=50))
        runner.run(trained)
        path = trained.save(tmp_path / "trained.npz")

        restored = build_policy("ddqn-checkpoint", dataset, path=str(path))
        assert restored.registry_name == "ddqn-checkpoint"
        assert_parameters_equal(trained.agent_w.network, restored.agent_w.network)

        # Identical rankings on a context crafted from the dataset's entities.
        tasks = list(dataset.tasks.values())[:6]
        context = ArrivalContext(
            timestamp=MINUTES_PER_DAY,
            worker=next(iter(dataset.workers.values())),
            worker_feature=dataset.schema.empty_worker_features(),
            available_tasks=tasks,
            task_features=np.stack([dataset.schema.task_features(task) for task in tasks]),
            task_qualities=np.zeros(len(tasks)),
        )
        assert trained.rank_tasks(context) == restored.rank_tasks(context)

        # reset() (called by SimulationRunner.run on every policy) must return
        # a restored framework to its checkpoint, not to a random re-init —
        # otherwise evaluating a checkpoint through a spec or the CLI would
        # silently score a fresh network.
        restored.reset()
        assert_parameters_equal(trained.agent_w.network, restored.agent_w.network)
        assert (
            restored.agent_w.diagnostics.train_steps
            == trained.agent_w.diagnostics.train_steps
        )
        result = SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=30)).run(restored)
        assert result.arrivals > 0

    def test_checkpoint_schema_mismatch_is_rejected(self, snapshot, tmp_path):
        from repro.crowd.features import FeatureSchema

        framework = trained_framework(snapshot, steps=5)
        path = framework.save(tmp_path / "framework.npz")
        other_schema = FeatureSchema(num_categories=9, num_domains=4)
        with pytest.raises(ValueError, match="different feature schema"):
            build_policy("ddqn-checkpoint", other_schema, path=str(path))
