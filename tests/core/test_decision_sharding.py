"""Worker-partition decision sharding: sharded scoring ≡ unsharded, bitwise.

Between train syncs per-arrival decisions are independent, so
``rank_tasks_batch(shards=P)`` may partition the candidate scoring into P
contiguous batch-axis chunks, score them independently and merge.  The rules
of ``test_stacked_equivalence.py`` apply — fusion along the batch axis only —
and the result must be *bit-identical* to the unsharded path for every
registered policy, including ragged pools (where per-chunk padding would
diverge from the global padding without the uniform pre-pad).
"""

import numpy as np
import pytest

from repro.api import available_policies, build_policy
from repro.core import FrameworkConfig, TaskArrangementFramework
from repro.core.sharding import pad_states_uniform, shard_slices
from repro.core.state import StateMatrix
from repro.crowd.entities import MINUTES_PER_DAY
from repro.crowd.platform import ArrivalContext
from repro.datasets import generate_crowdspring, scalability_snapshot
from repro.eval import RunnerConfig, SimulationRunner

from test_checkpoint import make_context, snapshot  # noqa: F401 (fixture)

TINY = dict(hidden_dim=16, num_heads=2, batch_size=8, train_interval=1, seed=5)


def ragged_context(snapshot, timestamp: float, pool_size: int) -> ArrivalContext:
    """An arrival whose candidate pool is truncated to ``pool_size`` tasks."""
    tasks, worker, schema, features = snapshot
    assert 0 < pool_size <= len(tasks)
    return ArrivalContext(
        timestamp=timestamp,
        worker=worker,
        worker_feature=schema.empty_worker_features(),
        available_tasks=list(tasks[:pool_size]),
        task_features=features[:pool_size],
        task_qualities=np.zeros(pool_size),
    )


def ragged_contexts(snapshot, count: int = 11) -> list[ArrivalContext]:
    tasks = snapshot[0]
    sizes = [((3 * i) % len(tasks)) + 1 for i in range(count)]
    return [
        ragged_context(snapshot, MINUTES_PER_DAY + 7.0 * i, size)
        for i, size in enumerate(sizes)
    ]


class TestShardSlices:
    def test_covers_the_range_contiguously(self):
        for count in (0, 1, 5, 16, 17):
            for shards in (1, 2, 4, 7, 32):
                slices = shard_slices(count, shards)
                covered = [i for piece in slices for i in range(piece.start, piece.stop)]
                assert covered == list(range(count))
                assert all(piece.stop > piece.start for piece in slices)
                assert len(slices) == min(shards, count)

    def test_near_even_split(self):
        sizes = [piece.stop - piece.start for piece in shard_slices(10, 4)]
        assert sizes == [3, 3, 2, 2]

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError, match="shards"):
            shard_slices(4, 0)
        with pytest.raises(ValueError, match="count"):
            shard_slices(-1, 2)


class TestPadStatesUniform:
    def _state(self, rows: int, dim: int = 3) -> StateMatrix:
        rng = np.random.default_rng(rows * 13 + dim)
        return StateMatrix(
            matrix=rng.normal(size=(rows, dim)),
            mask=np.zeros(rows, dtype=bool),
            task_ids=list(range(rows)),
        )

    def test_uniform_batch_is_returned_untouched(self):
        states = [self._state(4) for _ in range(3)]
        assert all(a is b for a, b in zip(pad_states_uniform(states), states))

    def test_ragged_batch_pads_to_global_max(self):
        states = [self._state(2), self._state(5), self._state(1)]
        padded = pad_states_uniform(states)
        for original, uniform in zip(states, padded):
            assert uniform.matrix.shape == (5, 3)
            rows = original.matrix.shape[0]
            assert np.array_equal(uniform.matrix[:rows], original.matrix)
            assert not uniform.matrix[rows:].any()
            assert np.array_equal(uniform.mask[:rows], original.mask)
            assert uniform.mask[rows:].all()
            assert uniform.task_ids == original.task_ids
            assert uniform.num_tasks == original.num_tasks

    def test_chunks_pad_like_the_global_batch(self):
        """The property the sharded scorer relies on: any contiguous chunk of
        the pre-padded batch produces the exact batch-axis slice of the
        unsharded ``pad_state_batch`` arrays."""
        from repro.core.qnetwork import pad_state_batch

        states = [self._state(2), self._state(5), self._state(1), self._state(4)]
        full_batch, full_mask = pad_state_batch(states)
        uniform = pad_states_uniform(states)
        for piece in shard_slices(len(states), 3):
            chunk_batch, chunk_mask = pad_state_batch(uniform[piece])
            assert np.array_equal(chunk_batch, full_batch[piece])
            assert np.array_equal(chunk_mask, full_mask[piece])


def _policy_variants(tmp_path, snapshot, dataset):
    """One (name, builder) per registered policy; builders give fresh instances."""
    _, _, schema, _ = snapshot
    checkpoint = tmp_path / "ddqn.npz"
    if not checkpoint.exists():
        build_policy("ddqn-worker", schema, **TINY).save(checkpoint)
    kwargs_by_name = {
        "ddqn": TINY,
        "ddqn-worker": TINY,
        "ddqn-requester": TINY,
        "ddqn-checkpoint": {"path": str(checkpoint)},
        "random": {"seed": 3},
    }
    variants = []
    for name in available_policies():
        kwargs = kwargs_by_name.get(name, {})
        source = dataset if name == "taskrec" else schema
        variants.append((name, lambda n=name, s=source, k=kwargs: build_policy(n, s, **k)))
    return variants


class TestShardedRankTasksBatch:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_crowdspring(scale=0.03, num_months=2, seed=1)

    def test_every_registered_policy_is_shard_invariant(
        self, tmp_path_factory, snapshot, dataset
    ):
        """P=1/2/4 produce identical rankings for every registered policy."""
        tmp_path = tmp_path_factory.mktemp("sharding")
        contexts = ragged_contexts(snapshot)
        for name, build in _policy_variants(tmp_path, snapshot, dataset):
            reference = build().rank_tasks_batch(contexts, shards=1)
            for shards in (2, 4):
                assert (
                    build().rank_tasks_batch(contexts, shards=shards) == reference
                ), f"policy {name!r} diverged at shards={shards}"

    @pytest.mark.parametrize("variant", ["balanced", "worker_only", "requester_only"])
    @pytest.mark.parametrize("shards", [2, 4, 11])
    def test_framework_q_values_bitwise_on_ragged_pools(self, snapshot, variant, shards):
        """Not just the rankings: the stored per-decision Q arrays match bitwise."""
        _, _, schema, _ = snapshot
        build = {
            "balanced": lambda: TaskArrangementFramework.balanced(
                schema, 0.25, FrameworkConfig(**TINY)
            ),
            "worker_only": lambda: TaskArrangementFramework.worker_only(
                schema, FrameworkConfig(**TINY)
            ),
            "requester_only": lambda: TaskArrangementFramework.requester_only(
                schema, FrameworkConfig(**TINY)
            ),
        }[variant]
        contexts = ragged_contexts(snapshot)
        unsharded, sharded = build(), build()
        expected = unsharded.rank_tasks_batch(contexts, shards=1)
        assert sharded.rank_tasks_batch(contexts, shards=shards) == expected
        for key, reference in unsharded._pending.items():
            decision = sharded._pending[key]
            for role in ("worker_q", "requester_q"):
                lhs, rhs = getattr(reference, role), getattr(decision, role)
                if lhs is None:
                    assert rhs is None
                else:
                    assert np.array_equal(lhs, rhs), f"{role} diverged at {key}"

    def test_threaded_chunk_scoring_is_bitwise(self, snapshot, monkeypatch):
        """With budget for real concurrency the thread-pool path stays exact."""
        monkeypatch.setenv("REPRO_MAX_THREADS", "8")
        _, _, schema, _ = snapshot
        contexts = ragged_contexts(snapshot)
        reference = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        threaded = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        assert threaded.rank_tasks_batch(contexts, shards=4) == reference.rank_tasks_batch(
            contexts, shards=1
        )

    def test_rng_consumption_matches_unsharded(self, snapshot):
        _, _, schema, _ = snapshot
        contexts = ragged_contexts(snapshot)
        unsharded = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        sharded = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        unsharded.rank_tasks_batch(contexts, shards=1)
        sharded.rank_tasks_batch(contexts, shards=3)
        follow_up = make_context(snapshot, MINUTES_PER_DAY + 999.0)
        assert sharded.rank_tasks(follow_up) == unsharded.rank_tasks(follow_up)

    def test_rejects_invalid_shards(self, snapshot):
        _, _, schema, _ = snapshot
        framework = TaskArrangementFramework.worker_only(schema, FrameworkConfig(**TINY))
        with pytest.raises(ValueError, match="shards"):
            framework.rank_tasks_batch([], shards=0)


class TestReplayDecisionShards:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_crowdspring(scale=0.03, num_months=2, seed=1)

    @pytest.mark.parametrize("decision_shards", [1, 2, 4])
    def test_sharded_replay_ranks_identically(self, dataset, decision_shards):
        runner = SimulationRunner(dataset, RunnerConfig(seed=0))
        policy = build_policy("ddqn-worker", dataset, **TINY)
        ranked = runner.replay_decisions(
            policy, batch_size=16, max_arrivals=20, decision_shards=decision_shards
        )
        assert ranked == 20

    def test_sharded_replay_pending_matches_unsharded(self, dataset):
        """The frozen-policy scoring itself is bitwise shard-invariant."""
        results = {}
        for shards in (1, 3):
            runner = SimulationRunner(dataset, RunnerConfig(seed=0))
            policy = build_policy("ddqn-worker", dataset, **TINY)
            runner.replay_decisions(
                policy, batch_size=16, max_arrivals=24, decision_shards=shards
            )
            results[shards] = {
                key: decision.worker_q for key, decision in policy._pending.items()
            }
        assert results[1].keys() == results[3].keys()
        for key, reference in results[1].items():
            assert np.array_equal(reference, results[3][key])

    def test_rejects_invalid_decision_shards(self, dataset):
        runner = SimulationRunner(dataset, RunnerConfig(seed=0))
        with pytest.raises(ValueError, match="decision_shards"):
            runner.replay_decisions(
                build_policy("random", dataset), decision_shards=0
            )
