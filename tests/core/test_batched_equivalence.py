"""Batched-vs-unbatched equivalence tests for the execution engine.

The batched engine (``SetQNetwork.forward_batch``, the two-forward TD-target
computation and the vectorized prioritized replay) must be a pure
performance change: every result has to match the per-sample reference path
to float tolerance (≤ 1e-9), with the same RNG draws.
"""

import numpy as np
import pytest

from repro.core import (
    DoubleDQNLearner,
    PrioritizedReplayMemory,
    SetQNetwork,
    StateTransformer,
    SumTree,
    Transition,
    pad_state_batch,
)
from repro.crowd import FeatureSchema

TOL = 1e-9


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=4, num_domains=3, award_bins=(100.0, 300.0))


def random_state(schema, transformer, num_tasks, seed):
    rng = np.random.default_rng(seed)
    worker = rng.dirichlet(np.ones(schema.worker_dim))
    tasks = np.zeros((num_tasks, schema.task_dim))
    for row in range(num_tasks):
        tasks[row, rng.integers(0, schema.num_categories)] = 1.0
        tasks[row, schema.num_categories + rng.integers(0, schema.num_domains)] = 1.0
    return transformer.transform(worker, tasks, list(range(num_tasks)))


def build_learner_and_memory(schema, transformer, seed=7, count=60, max_branches=3):
    network = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=3)
    learner = DoubleDQNLearner(network, gamma=0.5, batch_size=16, target_sync_interval=4)
    memory = PrioritizedReplayMemory(capacity=200, seed=seed)
    rng = np.random.default_rng(seed)
    for i in range(count):
        state = random_state(schema, transformer, int(rng.integers(1, 8)), 100 + i)
        branches = []
        for b in range(int(rng.integers(0, max_branches + 1))):
            # Include empty-pool branches: they contribute nothing to targets.
            branches.append(
                (float(rng.random()) / max_branches,
                 random_state(schema, transformer, int(rng.integers(0, 6)), 1000 + 10 * i + b))
            )
        memory.push(
            Transition(
                state=state,
                action_index=int(rng.integers(0, state.num_tasks)),
                reward=float(rng.random()),
                future_states=branches,
            )
        )
    return learner, memory


class TestForwardBatchEquivalence:
    def test_forward_batch_matches_per_state_forward(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=0)
        states = [random_state(schema, transformer, n, seed) for seed, n in
                  enumerate([3, 7, 1, 5, 2, 6])]
        batched = network.q_values_batch(states)
        assert len(batched) == len(states)
        for state, q_batched in zip(states, batched):
            np.testing.assert_allclose(network.q_values(state), q_batched, atol=TOL)

    def test_forward_batch_with_internally_padded_states(self, schema):
        """Mixing states padded to different max_tasks still matches."""
        padded = StateTransformer(schema, max_tasks=9)
        unpadded = StateTransformer(schema)
        network = SetQNetwork(padded.row_dim, hidden_dim=32, num_heads=4, seed=1)
        states = [
            random_state(schema, padded, 4, 0),
            random_state(schema, unpadded, 2, 1),
            random_state(schema, padded, 6, 2),
        ]
        batched = network.q_values_batch(states)
        for state, q_batched in zip(states, batched):
            assert q_batched.shape == (state.num_tasks,)
            np.testing.assert_allclose(network.q_values(state), q_batched, atol=TOL)

    def test_forward_batch_with_empty_state_in_batch(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=2)
        states = [
            random_state(schema, transformer, 3, 0),
            random_state(schema, transformer, 0, 1),
        ]
        batched = network.q_values_batch(states)
        np.testing.assert_allclose(network.q_values(states[0]), batched[0], atol=TOL)
        assert batched[1].shape == (0,)

    def test_q_values_batch_empty_input(self, schema):
        transformer = StateTransformer(schema)
        network = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=0)
        assert network.q_values_batch([]) == []

    def test_pad_state_batch_shapes_and_masks(self, schema):
        transformer = StateTransformer(schema)
        states = [random_state(schema, transformer, n, n) for n in (2, 5, 3)]
        batch, mask = pad_state_batch(states)
        assert batch.shape == (3, 5, transformer.row_dim)
        assert mask.shape == (3, 5)
        np.testing.assert_array_equal(mask[0], [False, False, True, True, True])
        np.testing.assert_allclose(batch[0, 2:], 0.0)

    def test_pad_state_batch_rejects_empty_list(self):
        with pytest.raises(ValueError):
            pad_state_batch([])


class TestTrainStepEquivalence:
    def test_td_targets_batch_matches_scalar_td_target(self, schema):
        transformer = StateTransformer(schema)
        learner, memory = build_learner_and_memory(schema, transformer)
        transitions, _, _ = memory.sample(16)
        batched = learner.td_targets_batch(transitions)
        scalar = np.array([learner.td_target(t) for t in transitions])
        np.testing.assert_allclose(batched, scalar, atol=TOL)

    def test_td_targets_cache_is_invalidated_on_sync(self, schema):
        transformer = StateTransformer(schema)
        learner, memory = build_learner_and_memory(schema, transformer)
        transitions, _, _ = memory.sample(8)
        first = learner.td_targets_batch(transitions)
        np.testing.assert_allclose(first, learner.td_targets_batch(transitions), atol=TOL)
        # Perturb online weights and hard-sync: cached target values must refresh.
        for param in learner.online.parameters():
            param.data = param.data + 0.05
        learner.sync_target()
        refreshed = learner.td_targets_batch(transitions)
        scalar = np.array([learner.td_target(t) for t in transitions])
        np.testing.assert_allclose(refreshed, scalar, atol=TOL)
        assert not np.allclose(first, refreshed)

    def test_learners_sharing_transitions_do_not_share_caches(self, schema):
        """Two learners over the same memory must not serve each other's
        cached target values (cache tokens are globally unique)."""
        transformer = StateTransformer(schema)
        _, memory = build_learner_and_memory(schema, transformer)
        network_a = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=1)
        network_b = SetQNetwork(transformer.row_dim, hidden_dim=32, num_heads=4, seed=2)
        learner_a = DoubleDQNLearner(network_a, gamma=0.5, batch_size=16)
        learner_b = DoubleDQNLearner(network_b, gamma=0.5, batch_size=16)
        transitions, _, _ = memory.sample(16)
        targets_a = learner_a.td_targets_batch(transitions)
        targets_b = learner_b.td_targets_batch(transitions)
        scalar_a = np.array([learner_a.td_target(t) for t in transitions])
        scalar_b = np.array([learner_b.td_target(t) for t in transitions])
        np.testing.assert_allclose(targets_a, scalar_a, atol=TOL)
        np.testing.assert_allclose(targets_b, scalar_b, atol=TOL)

    def test_train_step_matches_unbatched_reference(self, schema):
        """Same RNG draws, same loss and same post-step parameters."""
        transformer = StateTransformer(schema)
        learner_a, memory_a = build_learner_and_memory(schema, transformer)
        learner_b, memory_b = build_learner_and_memory(schema, transformer)
        for step in range(6):  # crosses a target sync (interval 4)
            report_a = learner_a.train_step(memory_a)
            report_b = learner_b.train_step_unbatched(memory_b)
            assert report_a.batch_size == report_b.batch_size
            assert abs(report_a.loss - report_b.loss) <= TOL, step
            assert abs(report_a.mean_abs_td_error - report_b.mean_abs_td_error) <= TOL
            assert abs(report_a.gradient_norm - report_b.gradient_norm) <= 1e-6
        params_a = learner_a.online.state_dict()
        params_b = learner_b.online.state_dict()
        for name in params_a:
            np.testing.assert_allclose(params_a[name], params_b[name], atol=TOL)

    def test_train_step_gradients_match_reference(self, schema):
        """One step: parameter gradients agree before the optimizer update."""
        transformer = StateTransformer(schema)
        learner_a, memory_a = build_learner_and_memory(schema, transformer)
        learner_b, memory_b = build_learner_and_memory(schema, transformer)
        # Capture gradients by disabling the update: lr has to stay positive,
        # so use a tiny value and compare grads directly after the step.
        grads = {}
        for learner, memory, key in ((learner_a, memory_a, "batched"),
                                     (learner_b, memory_b, "unbatched")):
            if key == "batched":
                learner.train_step(memory)
            else:
                learner.train_step_unbatched(memory)
            grads[key] = {
                name: param.grad.copy()
                for name, param in learner.online.named_parameters()
                if param.grad is not None
            }
        assert grads["batched"].keys() == grads["unbatched"].keys()
        assert grads["batched"], "expected non-empty gradients"
        for name in grads["batched"]:
            np.testing.assert_allclose(
                grads["batched"][name], grads["unbatched"][name], atol=TOL, err_msg=name
            )

    def test_train_step_with_no_future_branches(self, schema):
        transformer = StateTransformer(schema)
        learner, memory = build_learner_and_memory(schema, transformer, max_branches=0)
        report = learner.train_step(memory)
        assert report is not None
        transitions, _, _ = memory.sample(8)
        targets = learner.td_targets_batch(transitions)
        np.testing.assert_allclose(targets, [t.reward for t in transitions], atol=TOL)


class TestVectorizedSumTree:
    def test_update_batch_matches_scalar_updates(self):
        rng = np.random.default_rng(0)
        for capacity in (1, 5, 16, 33):
            scalar_tree, batch_tree = SumTree(capacity), SumTree(capacity)
            indices = rng.integers(0, capacity, size=4 * capacity)
            priorities = rng.random(4 * capacity) * 10
            for index, priority in zip(indices, priorities):
                scalar_tree.update(int(index), float(priority))
            batch_tree.update_batch(indices, priorities)
            np.testing.assert_allclose(scalar_tree._tree, batch_tree._tree, atol=1e-12)

    def test_update_batch_duplicate_indices_last_write_wins(self):
        tree = SumTree(8)
        tree.update_batch(np.array([2, 2, 2]), np.array([1.0, 5.0, 3.0]))
        assert tree.get(2) == 3.0
        assert tree.total == pytest.approx(3.0)

    def test_find_batch_matches_scalar_find(self):
        rng = np.random.default_rng(1)
        tree = SumTree(20)
        tree.update_batch(np.arange(20), rng.random(20) * 3)
        queries = rng.uniform(0, tree.total, size=200)
        scalar = np.array([tree.find(float(v)) for v in queries])
        np.testing.assert_array_equal(scalar, tree.find_batch(queries))

    def test_randomized_interleaved_update_find_sequences(self):
        rng = np.random.default_rng(2)
        scalar_tree, batch_tree = SumTree(12), SumTree(12)
        for _ in range(30):
            k = int(rng.integers(1, 6))
            indices = rng.integers(0, 12, size=k)
            priorities = rng.random(k)
            for index, priority in zip(indices, priorities):
                scalar_tree.update(int(index), float(priority))
            batch_tree.update_batch(indices, priorities)
            if scalar_tree.total > 0:
                queries = rng.uniform(0, scalar_tree.total, size=8)
                expected = np.array([scalar_tree.find(float(v)) for v in queries])
                np.testing.assert_array_equal(expected, batch_tree.find_batch(queries))

    def test_update_batch_validates_input(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.update_batch(np.array([4]), np.array([1.0]))
        with pytest.raises(ValueError):
            tree.update_batch(np.array([0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            tree.update_batch(np.array([0, 1]), np.array([1.0]))
        tree.update_batch(np.array([], dtype=np.int64), np.array([]))  # no-op


class TestVectorizedReplaySampling:
    def test_sample_draws_match_scalar_reference_stream(self, schema):
        """The vectorized stratified draw consumes the RNG identically."""
        transformer = StateTransformer(schema)
        _, memory = build_learner_and_memory(schema, transformer, seed=11)
        reference_rng = np.random.default_rng(11)
        # Advance the reference stream exactly as the memory's rng was used
        # so far: it has not been used before the first sample() call.
        count = 16
        total = memory._tree.total
        segment = total / count
        expected_targets = np.array(
            [reference_rng.uniform(slot * segment, (slot + 1) * segment) for slot in range(count)]
        )
        expected_indices = np.minimum(
            np.array([memory._tree.find(float(v)) for v in expected_targets]),
            len(memory) - 1,
        )
        _, indices, _ = memory.sample(count)
        np.testing.assert_array_equal(indices, expected_indices)

    def test_update_priorities_matches_scalar_semantics(self, schema):
        transformer = StateTransformer(schema)
        _, memory_a = build_learner_and_memory(schema, transformer, seed=5)
        _, memory_b = build_learner_and_memory(schema, transformer, seed=5)
        indices = np.array([0, 3, 3, 7])
        errors = np.array([0.5, 1.5, 0.25, 2.0])
        # Scalar reference (the seed implementation).
        for index, error in zip(indices, errors):
            priority = float(abs(error)) + memory_a.epsilon
            memory_a._max_priority = max(memory_a._max_priority, priority)
            memory_a._tree.update(int(index), priority**memory_a.alpha)
        memory_b.update_priorities(indices, errors)
        assert memory_a._max_priority == pytest.approx(memory_b._max_priority)
        np.testing.assert_allclose(memory_a._tree._tree, memory_b._tree._tree, atol=1e-12)
