"""Batched replay paths: ``push_batch`` stores and ``sample_fused`` sampling.

The async trainer bulk-stores whole handoff batches and the vectorized train
step samples many replicas' memories in one stacked SumTree descent.  Both
fast paths must be *bit-identical* to their serial counterparts — the delta
propagation of a batched push applies the same float additions in the same
order as sequential scalar updates, and the fused sampler replicates each
memory's RNG draws, tree walks, weights and beta annealing exactly.
"""

import numpy as np
import pytest

from repro.core.replay import (
    PrioritizedReplayMemory,
    ReplayMemory,
    Transition,
    sample_fused,
)
from repro.core.state import StateMatrix

FEATURE_DIM = 4


def make_transition(rng: np.random.Generator) -> Transition:
    num_tasks = int(rng.integers(1, 4))
    state = StateMatrix(
        matrix=rng.standard_normal((num_tasks, FEATURE_DIM)),
        mask=np.zeros(num_tasks, bool),
        task_ids=list(range(num_tasks)),
    )
    return Transition(
        state=state, action_index=0, reward=float(rng.uniform(-1.0, 1.0))
    )


def transitions(count: int, seed: int = 0) -> list[Transition]:
    rng = np.random.default_rng(seed)
    return [make_transition(rng) for _ in range(count)]


class TestPushBatch:
    @pytest.mark.parametrize("capacity,count", [(32, 10), (16, 16), (8, 30)])
    def test_tree_bitwise_equal_to_sequential_pushes(self, capacity, count):
        batched = PrioritizedReplayMemory(capacity=capacity, seed=0)
        serial = PrioritizedReplayMemory(capacity=capacity, seed=0)
        items = transitions(count)
        batched.push_batch(items)
        for item in items:
            serial.push(item)
        np.testing.assert_array_equal(batched._tree._tree, serial._tree._tree)
        assert len(batched) == len(serial)
        assert batched._cursor == serial._cursor

    def test_interleaved_with_priority_updates_stays_bitwise_equal(self):
        batched = PrioritizedReplayMemory(capacity=16, seed=0)
        serial = PrioritizedReplayMemory(capacity=16, seed=0)
        rng = np.random.default_rng(5)
        for round_index in range(6):
            items = transitions(5, seed=round_index)
            batched.push_batch(items)
            for item in items:
                serial.push(item)
            if len(serial) >= 4:
                indices = rng.integers(0, len(serial), size=3)
                errors = rng.uniform(0.0, 2.0, size=3)
                batched.update_priorities(indices, errors)
                serial.update_priorities(indices, errors)
        np.testing.assert_array_equal(batched._tree._tree, serial._tree._tree)

    def test_empty_batch_is_a_no_op(self):
        memory = PrioritizedReplayMemory(capacity=8, seed=0)
        memory.push_batch([])
        assert len(memory) == 0

    def test_uniform_memory_push_batch_matches_pushes(self):
        batched = ReplayMemory(capacity=8, seed=0)
        serial = ReplayMemory(capacity=8, seed=0)
        items = transitions(12)
        batched.push_batch(items)
        for item in items:
            serial.push(item)
        assert len(batched) == len(serial)
        assert [t.reward for t in batched._storage] == [t.reward for t in serial._storage]


def assert_sample_equal(fused, serial):
    fused_transitions, fused_indices, fused_weights = fused
    serial_transitions, serial_indices, serial_weights = serial
    # The fleets hold equal but distinct Transition objects; rewards identify
    # a draw unambiguously (each one is a fresh uniform float).
    assert [t.reward for t in fused_transitions] == [t.reward for t in serial_transitions]
    np.testing.assert_array_equal(fused_indices, serial_indices)
    np.testing.assert_array_equal(fused_weights, serial_weights)


def filled_memory(capacity: int, fill: int, seed: int) -> PrioritizedReplayMemory:
    memory = PrioritizedReplayMemory(capacity=capacity, seed=seed)
    rng = np.random.default_rng(seed + 100)
    for item in transitions(fill, seed=seed):
        memory.push(item)
    if len(memory) >= 4:
        indices = rng.integers(0, len(memory), size=4)
        memory.update_priorities(indices, rng.uniform(0.1, 3.0, size=4))
    return memory


class TestSampleFused:
    def test_bitwise_equal_to_serial_sampling(self):
        make = lambda: [  # noqa: E731 - two identical fleets, fresh RNG state
            filled_memory(capacity=32, fill=20, seed=seed) for seed in range(5)
        ]
        fused_memories, serial_memories = make(), make()
        for _ in range(4):
            fused = sample_fused(fused_memories, batch_size=8)
            serial = [memory.sample(8) for memory in serial_memories]
            for f, s in zip(fused, serial):
                assert_sample_equal(f, s)
        for fused_memory, serial_memory in zip(fused_memories, serial_memories):
            assert fused_memory.beta == serial_memory.beta
            assert (
                fused_memory.rng.bit_generator.state
                == serial_memory.rng.bit_generator.state
            )

    def test_mixed_sizes_and_kinds_fall_back_per_memory(self):
        def fleet():
            return [
                filled_memory(capacity=32, fill=20, seed=1),
                filled_memory(capacity=16, fill=16, seed=2),  # different tree
                filled_memory(capacity=32, fill=6, seed=3),  # short fill
                ReplayMemory(capacity=16, seed=4),
            ]

        fused_memories, serial_memories = fleet(), fleet()
        for memory in (fused_memories[3], serial_memories[3]):
            for item in transitions(10, seed=9):
                memory.push(item)
        fused = sample_fused(fused_memories, batch_size=8)
        serial = [memory.sample(8) for memory in serial_memories]
        for f, s in zip(fused, serial):
            assert_sample_equal(f, s)

    def test_empty_input(self):
        assert sample_fused([], batch_size=8) == []
