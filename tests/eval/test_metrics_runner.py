"""Tests for evaluation metrics, reporting and the simulation runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GreedyCosinePolicy, RandomPolicy
from repro.datasets import generate_crowdspring
from repro.eval import (
    RequesterBenefitTracker,
    RunnerConfig,
    SimulationRunner,
    WorkerBenefitTracker,
    evaluate_policy,
    format_final_table,
    format_monthly_series,
    format_series_comparison,
    format_table,
    rank_discount,
)


class TestRankDiscount:
    def test_rank_one_has_no_discount(self):
        assert rank_discount(1) == pytest.approx(1.0)

    def test_discount_decreases_with_rank(self):
        values = [rank_discount(r) for r in range(1, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            rank_discount(0)


class TestWorkerBenefitTracker:
    def test_cr_counts_only_top_rank_completions(self):
        tracker = WorkerBenefitTracker(k=3)
        tracker.record(0, completed_rank=0)
        tracker.record(0, completed_rank=2)
        tracker.record(0, completed_rank=None)
        assert tracker.completion_rate().final == pytest.approx(1.0 / 3.0)

    def test_kcr_discounts_and_cuts_at_k(self):
        tracker = WorkerBenefitTracker(k=2)
        tracker.record(0, completed_rank=1)   # rank 2 -> 1/log2(3)
        tracker.record(0, completed_rank=4)   # beyond k -> 0
        expected = (1.0 / np.log2(3.0)) / 2.0
        assert tracker.top_k_completion_rate().final == pytest.approx(expected)

    def test_ndcg_counts_any_rank(self):
        tracker = WorkerBenefitTracker(k=1)
        tracker.record(0, completed_rank=4)
        assert tracker.ndcg_completion_rate().final == pytest.approx(1.0 / np.log2(6.0))

    def test_monthly_series_is_cumulative(self):
        tracker = WorkerBenefitTracker()
        tracker.record(0, completed_rank=0)
        tracker.record(0, completed_rank=None)
        tracker.record(1, completed_rank=0)
        series = tracker.completion_rate()
        assert series.monthly[0] == pytest.approx(0.5)
        assert series.monthly[1] == pytest.approx(2.0 / 3.0)
        assert series.final == pytest.approx(2.0 / 3.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            WorkerBenefitTracker(k=0)

    @settings(max_examples=30, deadline=None)
    @given(
        ranks=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=20)), min_size=1, max_size=50
        )
    )
    def test_metric_ordering_invariant(self, ranks):
        """For any outcome sequence: CR <= kCR <= nDCG-CR <= 1."""
        tracker = WorkerBenefitTracker(k=5)
        for rank in ranks:
            tracker.record(0, completed_rank=rank)
        cr = tracker.completion_rate().final
        kcr = tracker.top_k_completion_rate().final
        ndcg = tracker.ndcg_completion_rate().final
        assert cr <= kcr + 1e-12
        assert kcr <= ndcg + 1e-12
        assert ndcg <= 1.0 + 1e-12


class TestRequesterBenefitTracker:
    def test_qg_accumulates_top_rank_gains(self):
        tracker = RequesterBenefitTracker(k=3)
        tracker.record(0, completed_rank=0, quality_gain=0.5)
        tracker.record(0, completed_rank=1, quality_gain=0.4)
        tracker.record(0, completed_rank=None, quality_gain=0.0)
        assert tracker.quality_gain().final == pytest.approx(0.5)

    def test_ndcg_qg_discounts_by_rank(self):
        tracker = RequesterBenefitTracker(k=5)
        tracker.record(0, completed_rank=1, quality_gain=1.0)
        assert tracker.ndcg_quality_gain().final == pytest.approx(1.0 / np.log2(3.0))

    def test_monthly_values_are_per_month_not_cumulative(self):
        tracker = RequesterBenefitTracker()
        tracker.record(0, completed_rank=0, quality_gain=1.0)
        tracker.record(1, completed_rank=0, quality_gain=2.0)
        series = tracker.quality_gain()
        assert series.monthly == [1.0, 2.0]
        assert series.final == pytest.approx(3.0)

    @settings(max_examples=30, deadline=None)
    @given(
        outcomes=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_qg_bounded_by_ndcg_qg_bound(self, outcomes):
        """kQG and nDCG-QG never exceed the undiscounted total gain."""
        tracker = RequesterBenefitTracker(k=5)
        total_gain = 0.0
        for rank, gain in outcomes:
            tracker.record(0, completed_rank=rank, quality_gain=gain if rank is not None else 0.0)
            if rank is not None:
                total_gain += gain
        assert tracker.ndcg_quality_gain().final <= total_gain + 1e-9
        assert tracker.top_k_quality_gain().final <= tracker.ndcg_quality_gain().final + 1e-9


class TestReporting:
    def test_format_table_alignment_and_content(self):
        table = format_table([{"policy": "DDQN", "CR": 0.4381}, {"policy": "Random", "CR": 0.154}])
        assert "DDQN" in table and "Random" in table
        assert "0.438" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_monthly_series(self):
        from repro.eval.metrics import MetricSeries

        text = format_monthly_series(
            {"DDQN": MetricSeries([0.1, 0.2], 0.2), "Random": MetricSeries([0.05, 0.1], 0.1)},
            metric_name="CR",
        )
        assert "M1" in text and "M2" in text and "final CR" in text

    def test_format_series_comparison(self):
        text = format_series_comparison(
            [0.5, 1.0], {"DDQN": [0.3, 0.4], "LinUCB": [0.25, 0.35]}, x_label="rate"
        )
        assert "rate=0.5" in text and "LinUCB" in text


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=21)


class TestSimulationRunner:
    def test_runner_config_validation(self):
        with pytest.raises(ValueError):
            RunnerConfig(mode="bogus")
        with pytest.raises(ValueError):
            RunnerConfig(k=0)

    def test_runner_config_rejects_negative_limits(self):
        with pytest.raises(ValueError, match="max_arrivals"):
            RunnerConfig(max_arrivals=-1)
        with pytest.raises(ValueError, match="max_warmup_observations"):
            RunnerConfig(max_warmup_observations=-3)
        # Zero and None remain valid.
        RunnerConfig(max_arrivals=0, max_warmup_observations=0)
        RunnerConfig(max_arrivals=None, max_warmup_observations=None)

    def test_clamped_k_never_over_asks_the_pool(self):
        config = RunnerConfig(mode="topk", k=5)
        assert config.clamped_k(3) == 3
        assert config.clamped_k(5) == 5
        assert config.clamped_k(50) == 5

    def test_topk_presentation_is_clamped_to_the_pool(self, tiny_dataset):
        # k far above any pool size: the presented list must match the full
        # ranking (clamped), so kCR coincides with nDCG-CR.
        config = RunnerConfig(mode="topk", k=10_000, seed=0, max_arrivals=30)
        result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        assert result.arrivals > 0
        assert result.kcr.final == pytest.approx(result.ndcg_cr.final)

    def test_run_produces_complete_result(self, tiny_dataset):
        config = RunnerConfig(seed=0, max_arrivals=60)
        result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        assert result.policy_name == "Random"
        assert 0 < result.arrivals <= 60
        assert 0.0 <= result.cr.final <= 1.0
        assert result.kcr.final <= result.ndcg_cr.final + 1e-12
        assert result.qg.final >= 0.0
        assert result.mean_decision_seconds >= 0.0
        summary = result.summary_row()
        assert set(summary) >= {"policy", "CR", "kCR", "nDCG-CR", "QG", "kQG", "nDCG-QG"}

    def test_single_mode_presents_only_top_task(self, tiny_dataset):
        config = RunnerConfig(mode="single", seed=0, max_arrivals=40)
        result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        # In single mode a completion can only happen at rank 0, so CR == kCR == nDCG.
        assert result.cr.final == pytest.approx(result.kcr.final)
        assert result.cr.final == pytest.approx(result.ndcg_cr.final)

    def test_topk_mode_limits_presented_list(self, tiny_dataset):
        config = RunnerConfig(mode="topk", k=2, seed=0, max_arrivals=40)
        result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        assert result.kcr.final == pytest.approx(result.ndcg_cr.final)

    def test_same_seed_same_policy_is_deterministic(self, tiny_dataset):
        config = RunnerConfig(seed=4, max_arrivals=50)
        first = evaluate_policy(tiny_dataset, RandomPolicy(seed=1), config)
        second = evaluate_policy(tiny_dataset, RandomPolicy(seed=1), config)
        assert first.cr.final == pytest.approx(second.cr.final)
        assert first.qg.final == pytest.approx(second.qg.final)

    def test_informed_policy_beats_random_on_ndcg(self, tiny_dataset):
        """Sanity check of the whole pipeline: cosine ranking > random ranking."""
        config = RunnerConfig(seed=0, max_arrivals=150)
        random_result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        cosine_result = evaluate_policy(tiny_dataset, GreedyCosinePolicy(), config)
        assert cosine_result.ndcg_cr.final >= random_result.ndcg_cr.final

    def test_max_arrivals_is_respected(self, tiny_dataset):
        config = RunnerConfig(seed=0, max_arrivals=10)
        result = evaluate_policy(tiny_dataset, RandomPolicy(seed=0), config)
        assert result.arrivals <= 10
