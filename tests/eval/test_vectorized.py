"""Episode-vectorized runs are float-for-float equal to serial runs.

The lockstep platform's contract: a :class:`repro.eval.VectorizedRunner` run
over N replicas produces, for every replica, *exactly* the
:class:`EvaluationResult` its serial ``SimulationRunner.run`` produces —
bitwise on every measure, for every registered policy, whether or not the
replicas' network work fuses (DDQN with a fixed ``max_tasks`` fuses; ragged
shapes and baselines run lockstep unfused).  Timing fields are machine noise
and excluded, as everywhere else in the determinism layer.
"""

import numpy as np
import pytest

from repro.api import (
    DatasetSpec,
    ExperimentSpec,
    PolicySpec,
    available_policies,
    build_policy,
    run_spec,
)
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig, SimulationRunner, VectorizedRunner
from tests.eval.test_determinism import assert_results_identical

TINY_DDQN = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0, "max_tasks": 12}

#: Every registered policy with CI-sized kwargs (``ddqn-checkpoint`` needs a
#: trained file and is covered separately below).
POLICY_KWARGS = [
    ("random", {"seed": 0}),
    ("taskrec", {"seed": 0}),
    ("greedy-cosine", {"objective": "worker"}),
    ("greedy-nn", {"objective": "worker", "seed": 0}),
    ("linucb", {"objective": "worker"}),
    ("ddqn", dict(TINY_DDQN, worker_weight=0.25)),
    ("ddqn-worker", TINY_DDQN),
    ("ddqn-requester", TINY_DDQN),
]

CONFIG = RunnerConfig(seed=0, max_arrivals=15, max_warmup_observations=12)


@pytest.fixture(scope="module")
def datasets():
    return [generate_crowdspring(scale=0.03, num_months=2, seed=seed) for seed in (1, 2, 3, 4)]


def serial_run(dataset, name, kwargs):
    return SimulationRunner(dataset, CONFIG).run(build_policy(name, dataset, **kwargs))


class TestVectorizedEqualsSerial:
    def test_parametrization_covers_the_whole_registry(self):
        covered = {name for name, _ in POLICY_KWARGS} | {"ddqn-checkpoint"}
        assert covered == set(available_policies()), (
            "a policy was registered without a vectorized-equality entry; "
            "add it to POLICY_KWARGS"
        )

    @pytest.mark.parametrize("name,kwargs", POLICY_KWARGS)
    def test_single_replica_equals_serial(self, datasets, name, kwargs):
        serial = serial_run(datasets[0], name, kwargs)
        [vectorized] = VectorizedRunner(
            [(datasets[0], build_policy(name, datasets[0], **kwargs))], CONFIG
        ).run()
        assert_results_identical(serial, vectorized)

    @pytest.mark.parametrize("name,kwargs", POLICY_KWARGS)
    def test_four_replicas_equal_four_serial_runs(self, datasets, name, kwargs):
        serial = [serial_run(dataset, name, kwargs) for dataset in datasets]
        replicas = [
            (dataset, build_policy(name, dataset, **kwargs)) for dataset in datasets
        ]
        vectorized = VectorizedRunner(replicas, CONFIG).run()
        for serial_result, vectorized_result in zip(serial, vectorized):
            assert_results_identical(serial_result, vectorized_result)

    def test_checkpoint_policy_replicas_equal_serial(self, datasets, tmp_path):
        trained = build_policy("ddqn-worker", datasets[0], **TINY_DDQN)
        SimulationRunner(datasets[0], CONFIG).run(trained)
        path = trained.save(tmp_path / "trained.npz")
        serial = [
            SimulationRunner(dataset, CONFIG).run(
                build_policy("ddqn-checkpoint", dataset, path=str(path))
            )
            for dataset in datasets[:2]
        ]
        vectorized = VectorizedRunner(
            [
                (dataset, build_policy("ddqn-checkpoint", dataset, path=str(path)))
                for dataset in datasets[:2]
            ],
            CONFIG,
        ).run()
        for serial_result, vectorized_result in zip(serial, vectorized):
            assert_results_identical(serial_result, vectorized_result)

    def test_mixed_policy_replicas_equal_serial(self, datasets):
        """Heterogeneous replica sets (ddqn + baselines) stay per-replica exact."""
        line_up = [
            ("ddqn", dict(TINY_DDQN, worker_weight=0.25)),
            ("random", {"seed": 0}),
            ("ddqn-worker", TINY_DDQN),
            ("linucb", {"objective": "worker"}),
        ]
        serial = [serial_run(datasets[0], name, kwargs) for name, kwargs in line_up]
        replicas = [
            (datasets[0], build_policy(name, datasets[0], **kwargs))
            for name, kwargs in line_up
        ]
        vectorized = VectorizedRunner(replicas, CONFIG).run()
        for serial_result, vectorized_result in zip(serial, vectorized):
            assert_results_identical(serial_result, vectorized_result)

    def test_ragged_shapes_without_max_tasks_stay_exact(self, datasets):
        """No ``max_tasks``: fusion rarely engages, equality must still hold."""
        kwargs = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0}
        serial = [serial_run(dataset, "ddqn-worker", kwargs) for dataset in datasets[:2]]
        vectorized = VectorizedRunner(
            [
                (dataset, build_policy("ddqn-worker", dataset, **kwargs))
                for dataset in datasets[:2]
            ],
            CONFIG,
        ).run()
        for serial_result, vectorized_result in zip(serial, vectorized):
            assert_results_identical(serial_result, vectorized_result)


class TestRunSpecVectorize:
    def spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            name="vectorize-spec",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=CONFIG,
            policies=[
                PolicySpec("random", {"seed": 0}),
                PolicySpec("ddqn-worker", dict(TINY_DDQN)),
                PolicySpec("linucb", {"objective": "worker"}),
            ],
        )

    def test_vectorized_run_spec_equals_serial(self, datasets):
        serial = run_spec(self.spec(), dataset=datasets[0])
        vectorized = run_spec(self.spec(), dataset=datasets[0], vectorize=3)
        assert list(serial) == list(vectorized)
        for label in serial:
            assert_results_identical(serial[label], vectorized[label])

    def test_vectorize_width_one_equals_serial(self, datasets):
        serial = run_spec(self.spec(), dataset=datasets[0])
        chunked = run_spec(self.spec(), dataset=datasets[0], vectorize=1)
        for label in serial:
            assert_results_identical(serial[label], chunked[label])

    def test_invalid_width_is_rejected(self, datasets):
        with pytest.raises(ValueError, match="vectorize"):
            run_spec(self.spec(), dataset=datasets[0], vectorize=0)


class TestVectorizedCheckpointRoundTrip:
    def test_vectorized_auto_checkpoints_restore_and_match_serial(self, datasets, tmp_path):
        """Checkpoints written during a vectorized run equal serial ones and
        restore into a framework that ranks identically."""
        config = RunnerConfig(
            seed=0, max_arrivals=12, max_warmup_observations=10, checkpoint_every=5
        )
        serial_path = tmp_path / "serial.npz"
        vector_path = tmp_path / "vector.npz"
        serial_policy = build_policy("ddqn-worker", datasets[0], **TINY_DDQN)
        SimulationRunner(datasets[0], config).run(serial_policy, checkpoint_path=serial_path)
        VectorizedRunner(
            [
                (
                    datasets[0],
                    build_policy("ddqn-worker", datasets[0], **TINY_DDQN),
                    vector_path,
                )
            ],
            config,
        ).run()

        from repro.core import TaskArrangementFramework

        restored_serial = TaskArrangementFramework.load(serial_path)
        restored_vector = TaskArrangementFramework.load(vector_path)
        serial_state = restored_serial.state_dict()
        vector_state = restored_vector.state_dict()
        for key in ("agent_w",):
            for name in serial_state[key]["learner"]["online"]:
                assert np.array_equal(
                    serial_state[key]["learner"]["online"][name],
                    vector_state[key]["learner"]["online"][name],
                ), name


class TestReplicaThreads:
    """``replica_threads=T`` is float-identical to the single-threaded run.

    Each replica group's lockstep call is bit-identical per replica to the
    serial call it replaces and the round boundary is a barrier, so the
    thread pool changes wall-clock only — never a bit of any result.
    """

    def test_threaded_lockstep_is_bit_identical(self, datasets, monkeypatch):
        # This box may have a single core; the budget guard would clamp the
        # pool to one thread and the test would not exercise it.
        monkeypatch.setenv("REPRO_MAX_THREADS", "4")
        replicas = lambda: [  # noqa: E731 - fresh policies per run
            (dataset, build_policy("ddqn-worker", dataset, **TINY_DDQN))
            for dataset in datasets
        ]
        single = VectorizedRunner(replicas(), CONFIG, replica_threads=1).run()
        threaded = VectorizedRunner(replicas(), CONFIG, replica_threads=2).run()
        ragged = VectorizedRunner(replicas(), CONFIG, replica_threads=3).run()
        for one, two, three in zip(single, threaded, ragged):
            assert_results_identical(one, two)
            assert_results_identical(one, three)

    def test_threaded_parameters_match_single_threaded(self, datasets, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_THREADS", "4")

        def final_states(threads):
            runner = VectorizedRunner(
                [
                    (dataset, build_policy("ddqn-worker", dataset, **TINY_DDQN))
                    for dataset in datasets
                ],
                CONFIG,
                replica_threads=threads,
            )
            runner.run()
            return [policy.state_dict() for policy in runner.policies]

        for state_a, state_b in zip(final_states(1), final_states(2)):
            online_a = state_a["agent_w"]["learner"]["online"]
            online_b = state_b["agent_w"]["learner"]["online"]
            for name in online_a:
                assert np.array_equal(online_a[name], online_b[name]), name

    def test_requested_threads_clamp_to_budget_with_warning(self, datasets, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_THREADS", "1")
        runner = VectorizedRunner(
            [
                (dataset, build_policy("random", dataset, seed=0))
                for dataset in datasets
            ],
            CONFIG,
            replica_threads=4,
        )
        with pytest.warns(RuntimeWarning, match="thread budget"):
            assert runner._effective_threads() == 1

    def test_invalid_replica_threads_rejected(self, datasets):
        with pytest.raises(ValueError, match="replica_threads"):
            VectorizedRunner(
                [(datasets[0], build_policy("random", datasets[0], seed=0))],
                CONFIG,
                replica_threads=0,
            )
