"""Intra-cell resume: a killed run fast-forwards instead of redoing arrivals.

Auto-checkpointing writes a ``<stem>.runstate.npz`` sidecar next to each
policy checkpoint: the full platform state, metric trackers, loop counters
and trace cursor.  ``SimulationRunner.run(..., resume=True)`` restores all of
it and skips the already-applied events, so the continued run is
bit-identical to one that was never interrupted — the property a killed
sweep cell relies on.
"""

import numpy as np
import pytest

from repro.api import build_policy
from repro.datasets import generate_crowdspring
from repro.eval import (
    RunnerConfig,
    SimulationRunner,
    VectorizedRunner,
    runstate_path,
)
from repro.eval.metrics import RequesterBenefitTracker, WorkerBenefitTracker
from tests.eval.test_determinism import assert_results_identical

TINY_DDQN = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0, "max_tasks": 12}


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


def config(max_arrivals, checkpoint_every=10):
    return RunnerConfig(
        seed=0,
        max_arrivals=max_arrivals,
        max_warmup_observations=12,
        checkpoint_every=checkpoint_every,
    )


class TestRunstateResume:
    def test_interrupted_run_resumes_bit_identically(self, dataset, tmp_path):
        path = tmp_path / "full" / "ddqn.npz"
        uninterrupted = SimulationRunner(dataset, config(40)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=path
        )

        # "Kill" a second run at 30 arrivals, then resume it to 40 with a
        # fresh process-like policy object.
        resumed_path = tmp_path / "resumed" / "ddqn.npz"
        SimulationRunner(dataset, config(30)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=resumed_path
        )
        assert runstate_path(resumed_path).exists()
        resumed = SimulationRunner(dataset, config(40)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN),
            checkpoint_path=resumed_path,
            resume=True,
        )
        assert_results_identical(uninterrupted, resumed)

    def test_resume_skips_finished_arrivals(self, dataset, tmp_path):
        """A resume at the target arrival count does no further simulation."""
        path = tmp_path / "done.npz"
        finished = SimulationRunner(dataset, config(20)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=path
        )
        resumed = SimulationRunner(dataset, config(20)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN),
            checkpoint_path=path,
            resume=True,
        )
        assert_results_identical(finished, resumed)

    def test_resume_without_sidecar_starts_fresh(self, dataset, tmp_path):
        path = tmp_path / "fresh.npz"
        baseline = SimulationRunner(dataset, config(15)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN)
        )
        result = SimulationRunner(dataset, config(15)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN),
            checkpoint_path=path,
            resume=True,
        )
        assert_results_identical(baseline, result)

    def test_resume_with_different_config_is_rejected(self, dataset, tmp_path):
        path = tmp_path / "cfg.npz"
        SimulationRunner(dataset, config(15)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=path
        )
        other = build_policy("ddqn-worker", dataset, **dict(TINY_DDQN, hidden_dim=16))
        with pytest.raises(ValueError, match="different framework config"):
            SimulationRunner(dataset, config(20)).run(
                other, checkpoint_path=path, resume=True
            )

    def test_resume_with_unknown_format_version_is_rejected(self, dataset, tmp_path):
        """A future-format sidecar fails loudly, naming the file and version."""
        from repro.nn.serialization import load_checkpoint, save_checkpoint

        path = tmp_path / "future.npz"
        SimulationRunner(dataset, config(15)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=path
        )
        sidecar = runstate_path(path)
        tree = load_checkpoint(sidecar)
        tree["format"] = "repro.runstate/99"
        save_checkpoint(tree, sidecar)
        with pytest.raises(ValueError) as excinfo:
            SimulationRunner(dataset, config(20)).run(
                build_policy("ddqn-worker", dataset, **TINY_DDQN),
                checkpoint_path=path,
                resume=True,
            )
        message = str(excinfo.value)
        assert str(sidecar) in message
        assert "repro.runstate/99" in message
        assert "unknown format" in message

    def test_resume_with_non_runstate_file_is_rejected(self, dataset, tmp_path):
        """A checkpoint that is not a run-state sidecar at all says so."""
        from repro.nn.serialization import load_checkpoint, save_checkpoint

        path = tmp_path / "alien.npz"
        SimulationRunner(dataset, config(15)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN), checkpoint_path=path
        )
        sidecar = runstate_path(path)
        tree = load_checkpoint(sidecar)
        tree["format"] = "something/else"
        save_checkpoint(tree, sidecar)
        with pytest.raises(ValueError, match="not a run-state checkpoint"):
            SimulationRunner(dataset, config(20)).run(
                build_policy("ddqn-worker", dataset, **TINY_DDQN),
                checkpoint_path=path,
                resume=True,
            )

    def test_baselines_never_write_runstate(self, dataset, tmp_path):
        path = tmp_path / "random.npz"
        SimulationRunner(dataset, config(10, checkpoint_every=2)).run(
            build_policy("random", dataset, seed=0), checkpoint_path=path
        )
        assert not path.exists()
        assert not runstate_path(path).exists()

    def test_vectorized_run_resumes_bit_identically(self, dataset, tmp_path):
        uninterrupted = SimulationRunner(dataset, config(40)).run(
            build_policy("ddqn-worker", dataset, **TINY_DDQN)
        )
        path = tmp_path / "vector" / "ddqn.npz"
        VectorizedRunner(
            [(dataset, build_policy("ddqn-worker", dataset, **TINY_DDQN), path)],
            config(30),
        ).run()
        [resumed] = VectorizedRunner(
            [(dataset, build_policy("ddqn-worker", dataset, **TINY_DDQN), path)],
            config(40),
            resume=True,
        ).run()
        assert_results_identical(uninterrupted, resumed)


class TestStateDictRoundTrips:
    def test_platform_state_round_trips(self, dataset):
        from repro.eval.runner import _build_platform

        runner_config = RunnerConfig(seed=0)
        platform, behavior = _build_platform(dataset, runner_config)
        warm, online = dataset.trace.split_warmup(dataset.warmup_end)
        platform.warm_up(warm)
        for context in platform.replay(online.between(online.start_time, online.start_time + 3000)):
            if context.available_tasks:
                platform.submit_list(context, [task.task_id for task in context.available_tasks])
        state = platform.state_dict()

        fresh, _ = _build_platform(dataset, runner_config)
        fresh.load_state_dict(state)
        assert fresh.current_time == platform.current_time
        assert sorted(fresh._available) == sorted(platform._available)
        assert fresh.statistics.arrivals == platform.statistics.arrivals
        assert fresh.statistics.completions == platform.statistics.completions
        assert fresh.rng.bit_generator.state == platform.rng.bit_generator.state
        for task_id, task in platform.tasks.items():
            clone = fresh.tasks[task_id]
            assert clone.quality == task.quality
            assert [c.worker_id for c in clone.completions] == [
                c.worker_id for c in task.completions
            ]
        for worker_id, worker in platform.workers.items():
            clone = fresh.workers[worker_id]
            assert clone.history == worker.history
            assert clone.arrival_count == worker.arrival_count
            assert (clone.last_arrival is None) == (worker.last_arrival is None)
        for worker_id in platform.feature_tracker.known_workers():
            assert np.array_equal(
                fresh.feature_tracker.features_of(worker_id),
                platform.feature_tracker.features_of(worker_id),
            )

    def test_metric_trackers_round_trip(self):
        worker = WorkerBenefitTracker(k=3)
        requester = RequesterBenefitTracker(k=3)
        for month, rank, gain in ((0, 0, 0.5), (0, None, 0.0), (1, 2, 1.25), (2, 1, 0.75)):
            worker.record(month, rank)
            requester.record(month, rank, gain)
        worker_clone = WorkerBenefitTracker(k=3)
        worker_clone.load_state_dict(worker.state_dict())
        requester_clone = RequesterBenefitTracker(k=3)
        requester_clone.load_state_dict(requester.state_dict())
        assert worker_clone.completion_rate().monthly == worker.completion_rate().monthly
        assert worker_clone.ndcg_completion_rate().final == worker.ndcg_completion_rate().final
        assert requester_clone.quality_gain().monthly == requester.quality_gain().monthly
        assert requester_clone.top_k_quality_gain().final == requester.top_k_quality_gain().final
