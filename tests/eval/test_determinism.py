"""Seed-determinism guarantees behind the sweep engine.

The sweep layer's whole resume/parallelism story rests on two properties:

* running the *same* :class:`ExperimentSpec` twice produces *identical*
  results (every policy's randomness flows from spec seeds, never from
  global state), and
* a parallel sweep produces bit-identical aggregated results to the same
  sweep run serially (cells are fully self-contained).

These tests pin both down for every registered policy.  Timing fields
(``mean_*_seconds``) are machine noise and deliberately excluded.
"""

import pytest

from repro.api import (
    DatasetSpec,
    ExperimentSpec,
    PolicySpec,
    SweepAxis,
    SweepSpec,
    available_policies,
    build_policy,
    run_spec,
    run_sweep,
)
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig, SimulationRunner
from repro.eval.metrics import EvaluationResult

TINY_DDQN = {"hidden_dim": 16, "num_heads": 2, "batch_size": 8, "train_interval": 4, "seed": 0}

#: Builder kwargs making every registered policy CI-sized (the
#: ``ddqn-checkpoint`` entry needs a trained file and is covered separately).
POLICY_KWARGS = [
    ("random", {"seed": 0}),
    ("taskrec", {"seed": 0}),
    ("greedy-cosine", {"objective": "worker"}),
    ("greedy-nn", {"objective": "worker", "seed": 0}),
    ("linucb", {"objective": "worker"}),
    ("ddqn", dict(TINY_DDQN, worker_weight=0.25)),
    ("ddqn-worker", TINY_DDQN),
    ("ddqn-requester", TINY_DDQN),
]


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


def assert_results_identical(a: EvaluationResult, b: EvaluationResult) -> None:
    """Exact (bitwise, not approximate) equality of all deterministic fields."""
    assert a.policy_name == b.policy_name
    assert a.arrivals == b.arrivals
    assert a.completions == b.completions
    for field in ("cr", "kcr", "ndcg_cr", "qg", "kqg", "ndcg_qg"):
        series_a, series_b = getattr(a, field), getattr(b, field)
        assert series_a.monthly == series_b.monthly, field
        assert series_a.final == series_b.final, field


def spec_for(name: str, kwargs: dict) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"determinism-{name}",
        dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
        runner=RunnerConfig(seed=0, max_arrivals=40),
        policies=[PolicySpec(name, dict(kwargs))],
    )


class TestEveryPolicyIsSeedDeterministic:
    def test_parametrization_covers_the_whole_registry(self):
        covered = {name for name, _ in POLICY_KWARGS} | {"ddqn-checkpoint"}
        assert covered == set(available_policies()), (
            "a policy was registered without a determinism test entry; "
            "add it to POLICY_KWARGS"
        )

    @pytest.mark.parametrize("name,kwargs", POLICY_KWARGS)
    def test_same_spec_twice_gives_identical_results(self, dataset, name, kwargs):
        spec = spec_for(name, kwargs)
        first = run_spec(spec, dataset=dataset)
        second = run_spec(spec, dataset=dataset)
        assert list(first) == list(second)
        for label in first:
            assert_results_identical(first[label], second[label])

    def test_checkpoint_policy_is_deterministic(self, dataset, tmp_path):
        trained = build_policy("ddqn-worker", dataset, **TINY_DDQN)
        SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=30)).run(trained)
        path = trained.save(tmp_path / "trained.npz")
        runs = []
        for _ in range(2):
            restored = build_policy("ddqn-checkpoint", dataset, path=str(path))
            runs.append(
                SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=30)).run(restored)
            )
        assert_results_identical(runs[0], runs[1])


class TestParallelSweepMatchesSerial:
    def tiny_sweep(self) -> SweepSpec:
        base = ExperimentSpec(
            name="determinism-cell",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=RunnerConfig(seed=0, max_arrivals=25),
            policies=[
                PolicySpec("random", {"seed": 0}),
                PolicySpec("ddqn-worker", dict(TINY_DDQN, hidden_dim=8)),
            ],
        )
        return SweepSpec(
            name="determinism-sweep",
            base=base,
            axes=[SweepAxis(target="dataset", key="seed", values=[1, 2])],
            replicate_axis="dataset.seed",
        )

    def test_parallel_and_serial_aggregates_are_bit_identical(self, tmp_path):
        serial = run_sweep(self.tiny_sweep(), tmp_path / "serial", workers=1)
        parallel = run_sweep(self.tiny_sweep(), tmp_path / "parallel", workers=2)
        # Dict equality here is exact float equality on every mean/std/value
        # of every measure in every group — not approximate comparison.
        assert parallel == serial

    def test_rerunning_a_finished_sweep_returns_the_stored_aggregate(self, tmp_path):
        first = run_sweep(self.tiny_sweep(), tmp_path / "sweep")
        executed: list[str] = []
        second = run_sweep(
            self.tiny_sweep(),
            tmp_path / "sweep",
            progress=lambda cell, done, total: executed.append(cell),
        )
        assert executed == []
        assert second == first
