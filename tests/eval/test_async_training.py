"""End-to-end guarantees of asynchronous training (seeded-queue determinism).

Free-running async is throughput-first and timing-dependent; everything the
repository *guarantees* about async mode holds under a fixed handoff schedule
(``async_handoff_lag``):

* the same spec run twice produces identical :class:`EvaluationResult`s AND
  bit-identical final network parameters;
* checkpoint/resume is exact — the checkpoint barrier drains the trainer, so
  a killed-and-resumed run equals an uninterrupted one;
* the knob threads end to end (FrameworkConfig → AgentConfig → registry →
  specs → CLI), and a framework with ``async_training=False`` stays on the
  bit-identical :class:`SyncTrainer` path.
"""

import json

import numpy as np
import pytest

from repro.api import DatasetSpec, ExperimentSpec, PolicySpec, build_policy, run_spec
from repro.core import AsyncTrainer, SyncTrainer
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig, SimulationRunner, VectorizedRunner
from tests.eval.test_determinism import assert_results_identical

TINY = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0, "max_tasks": 12}
ASYNC_FIXED = dict(TINY, async_training=True, async_handoff_lag=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


def config(max_arrivals, checkpoint_every=None):
    return RunnerConfig(
        seed=0,
        max_arrivals=max_arrivals,
        max_warmup_observations=12,
        checkpoint_every=checkpoint_every,
    )


def final_flat_params(policy) -> list[np.ndarray]:
    arrays = []
    for agent in (policy.agent_w, policy.agent_r):
        if agent is not None:
            optimizer = agent.learner.optimizer
            optimizer._adopt_strays()
            arrays.append(optimizer._flat_params.copy())
    return arrays


class TestSeededHandoffDeterminism:
    def test_same_spec_twice_identical_results_and_parameters(self, dataset):
        outcomes = []
        for _ in range(2):
            policy = build_policy("ddqn-worker", dataset, **ASYNC_FIXED)
            result = SimulationRunner(dataset, config(40)).run(policy)
            outcomes.append((result, final_flat_params(policy)))
            policy.trainer.close()
        assert_results_identical(outcomes[0][0], outcomes[1][0])
        for first, second in zip(outcomes[0][1], outcomes[1][1]):
            np.testing.assert_array_equal(first, second)

    def test_both_agents_run_under_the_fixed_schedule(self, dataset):
        policy = build_policy("ddqn", dataset, **ASYNC_FIXED)
        result = SimulationRunner(dataset, config(30)).run(policy)
        stats = policy.trainer.stats()
        assert stats["mode"] == "fixed"
        assert stats["plans_consumed"] == stats["plans_submitted"]
        assert result.arrivals == 30
        assert policy.agent_w.diagnostics.train_steps > 0
        policy.trainer.close()

    def test_sync_framework_keeps_the_inline_trainer(self, dataset):
        synchronous = build_policy("ddqn-worker", dataset, **TINY)
        asynchronous = build_policy("ddqn-worker", dataset, **ASYNC_FIXED)
        assert isinstance(synchronous.trainer, SyncTrainer)
        assert isinstance(asynchronous.trainer, AsyncTrainer)
        assert not synchronous.agent_w.config.async_training
        assert asynchronous.agent_w.config.async_training
        asynchronous.trainer.close()

    def test_vectorized_runner_routes_async_through_the_serial_path(self, dataset):
        serial = SimulationRunner(dataset, config(25)).run(
            build_policy("ddqn-worker", dataset, **ASYNC_FIXED)
        )
        [vectorized] = VectorizedRunner(
            [(dataset, build_policy("ddqn-worker", dataset, **ASYNC_FIXED))], config(25)
        ).run()
        # Async frameworks are excluded from lockstep fusion (the trainer owns
        # the optimiser); the serial fallback must agree exactly.
        assert_results_identical(serial, vectorized)


class TestAsyncCheckpointRoundTrip:
    def test_interrupted_run_resumes_bit_identically(self, dataset, tmp_path):
        path = tmp_path / "full" / "ddqn.npz"
        uninterrupted = SimulationRunner(dataset, config(40, checkpoint_every=10)).run(
            build_policy("ddqn-worker", dataset, **ASYNC_FIXED), checkpoint_path=path
        )

        resumed_path = tmp_path / "resumed" / "ddqn.npz"
        SimulationRunner(dataset, config(30, checkpoint_every=10)).run(
            build_policy("ddqn-worker", dataset, **ASYNC_FIXED),
            checkpoint_path=resumed_path,
        )
        resumed = SimulationRunner(dataset, config(40, checkpoint_every=10)).run(
            build_policy("ddqn-worker", dataset, **ASYNC_FIXED),
            checkpoint_path=resumed_path,
            resume=True,
        )
        assert_results_identical(uninterrupted, resumed)

    def test_checkpoint_drains_the_queue(self, dataset, tmp_path):
        policy = build_policy("ddqn-worker", dataset, **ASYNC_FIXED)
        SimulationRunner(dataset, config(20, checkpoint_every=5)).run(
            policy, checkpoint_path=tmp_path / "ddqn.npz"
        )
        stats = policy.trainer.stats()
        # The final flush + every checkpoint barrier leave nothing queued.
        assert stats["plans_consumed"] == stats["plans_submitted"]
        policy.trainer.close()


class TestConfigAndSpecThreading:
    def test_framework_config_threads_to_agents_and_trainer(self, dataset):
        policy = build_policy(
            "ddqn",
            dataset,
            async_training=True,
            async_queue_size=16,
            async_publish_interval=2,
            **TINY,
        )
        assert policy.config.async_training
        assert policy.config.async_queue_size == 16
        trainer = policy.trainer
        assert isinstance(trainer, AsyncTrainer)
        assert trainer._queue_size == 16
        assert trainer._publish_interval == 2
        assert trainer._handoff_lag is None
        for agent in (policy.agent_w, policy.agent_r):
            assert agent.config.async_training
        trainer.close()

    def test_spec_round_trips_async_kwargs(self, dataset):
        spec = ExperimentSpec(
            name="async-spec",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=RunnerConfig(seed=0, max_arrivals=20, max_warmup_observations=12),
            policies=[PolicySpec("ddqn-worker", dict(ASYNC_FIXED))],
        )
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        first = run_spec(spec, dataset=dataset)
        second = run_spec(restored, dataset=dataset)
        for label in first:
            assert_results_identical(first[label], second[label])

    def test_cli_async_flag_enables_async_training(self, dataset, tmp_path, monkeypatch):
        from repro.api import cli

        spec = ExperimentSpec(
            name="cli-async",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=RunnerConfig(seed=0, max_arrivals=15, max_warmup_observations=12),
            policies=[PolicySpec("ddqn-worker", dict(TINY))],
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)

        seen: dict = {}
        real_run_spec = cli.run_spec

        def spying_run_spec(spec, **kwargs):
            seen["kwargs"] = [entry.kwargs for entry in spec.policies]
            return real_run_spec(spec, **kwargs)

        monkeypatch.setattr(cli, "run_spec", spying_run_spec)
        assert cli.main(["run", str(spec_path), "--async"]) == 0
        assert all(kwargs.get("async_training") for kwargs in seen["kwargs"])

    def test_cli_async_flag_requires_a_ddqn_policy(self, tmp_path):
        from repro.api import cli

        spec = ExperimentSpec(
            name="cli-async-bad",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=RunnerConfig(seed=0, max_arrivals=5),
            policies=[PolicySpec("random", {"seed": 0})],
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        with pytest.raises(SystemExit, match="DDQN"):
            cli.main(["run", str(spec_path), "--async"])
