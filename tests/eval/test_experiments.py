"""Tests for the experiment entry points (fast pieces only).

The heavy multi-policy comparisons are exercised by the benchmark suite; here
we test the configuration plumbing, the policy line-ups and the cheap
experiment helpers end to end on tiny inputs.
"""

import numpy as np
import pytest

from repro.baselines import RandomPolicy
from repro.core import TaskArrangementFramework
from repro.eval.experiments import (
    EfficiencyResult,
    ExperimentScale,
    benchmark_framework_config,
    make_dataset,
    requester_benefit_policies,
    run_scalability_experiment,
    run_trace_statistics,
    worker_benefit_policies,
    _run_policies,
)


class TestExperimentScale:
    def test_paper_scale_matches_paper_hyperparameters(self):
        scale = ExperimentScale.paper()
        assert scale.scale == 1.0
        assert scale.num_months == 13
        assert scale.hidden_dim == 128
        assert scale.num_heads == 4
        assert scale.batch_size == 64
        assert scale.train_interval == 1

    def test_ci_scale_is_smaller(self):
        paper = ExperimentScale.paper()
        ci = ExperimentScale.ci()
        assert ci.scale < paper.scale
        assert ci.hidden_dim < paper.hidden_dim
        assert ci.max_arrivals is not None

    def test_benchmark_framework_config_applies_scale_and_overrides(self):
        scale = ExperimentScale.ci()
        config = benchmark_framework_config(scale, gamma_worker=0.0, prioritized_replay=False)
        assert config.hidden_dim == scale.hidden_dim
        assert config.learning_rate == scale.learning_rate
        assert config.gamma_worker == 0.0
        assert config.prioritized_replay is False


class TestPolicyLineUps:
    @pytest.fixture(scope="class")
    def tiny(self):
        scale = ExperimentScale(scale=0.03, num_months=2, hidden_dim=16, num_heads=2, seed=1)
        return scale, make_dataset(scale)

    def test_worker_line_up_matches_fig7(self, tiny):
        scale, dataset = tiny
        policies = worker_benefit_policies(dataset, scale)
        names = [policy.name for policy in policies]
        assert names == ["Random", "Taskrec", "Greedy CS", "Greedy NN", "LinUCB", "DDQN"]
        assert isinstance(policies[-1], TaskArrangementFramework)
        assert policies[-1].agent_r is None

    def test_requester_line_up_matches_fig8(self, tiny):
        scale, dataset = tiny
        policies = requester_benefit_policies(dataset, scale)
        names = [policy.name for policy in policies]
        assert names == ["Random", "Greedy CS", "Greedy NN", "LinUCB", "DDQN"]
        assert policies[-1].agent_w is None

    def test_run_policies_produces_rankable_results(self, tiny):
        scale, dataset = tiny
        outcome = _run_policies(dataset, [RandomPolicy(seed=0), RandomPolicy(seed=1)], scale)
        finals = outcome.final("nDCG-CR")
        assert len(finals) >= 1
        ranking = outcome.ranking("nDCG-CR")
        assert set(ranking) == set(finals)


class TestCheapExperiments:
    def test_trace_statistics_entry_point(self):
        scale = ExperimentScale(scale=0.03, num_months=2, seed=1)
        gaps, monthly = run_trace_statistics(scale)
        assert len(gaps.any_worker_gaps) > 0
        assert monthly.num_months >= 2

    def test_scalability_experiment_tiny(self):
        result = run_scalability_experiment(pool_sizes=(5, 20), hidden_dim=16, repeats=1)
        assert result.pool_sizes == [5, 20]
        assert set(result.seconds_by_policy) == {"LinUCB", "DDQN"}
        for series in result.seconds_by_policy.values():
            assert len(series) == 2
            assert all(value > 0 for value in series)

    def test_efficiency_result_reporting_rule(self):
        result = EfficiencyResult(
            per_feedback_seconds={"Taskrec": 0.00001, "DDQN": 0.02},
            per_retrain_seconds={"Taskrec": 3.0, "DDQN": 0.0},
        )
        reported = result.reported_update_seconds()
        assert reported["Taskrec"] == pytest.approx(3.0)
        assert reported["DDQN"] == pytest.approx(0.02)
