def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_smoke: tiny-shape smoke run of the perf microbenchmark harness",
    )
