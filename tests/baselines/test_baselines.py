"""Tests for the five baseline policies."""

import numpy as np
import pytest

from repro.baselines import (
    GreedyCosinePolicy,
    GreedyNeuralPolicy,
    LinUCBPolicy,
    RandomPolicy,
    TaskrecPMFPolicy,
)
from repro.crowd import (
    ArrivalContext,
    FeatureSchema,
    Feedback,
    Task,
    Worker,
)


@pytest.fixture
def schema():
    return FeatureSchema(num_categories=3, num_domains=2, award_bins=(100.0,))


def make_context(schema, num_tasks=5, worker_feature=None, timestamp=10.0, seed=0):
    rng = np.random.default_rng(seed)
    tasks = [
        Task(
            task_id=i,
            requester_id=0,
            category=i % schema.num_categories,
            domain=i % schema.num_domains,
            award=50.0 + 100.0 * i,
            created_at=0.0,
            deadline=10_000.0,
        )
        for i in range(num_tasks)
    ]
    worker = Worker(
        worker_id=1,
        quality=0.8,
        category_preference=rng.dirichlet(np.ones(schema.num_categories)),
        domain_preference=rng.dirichlet(np.ones(schema.num_domains)),
        award_sensitivity=0.4,
    )
    if worker_feature is None:
        worker_feature = rng.dirichlet(np.ones(schema.worker_dim))
    if tasks:
        task_features = np.stack([schema.task_features(task) for task in tasks])
    else:
        task_features = np.zeros((0, schema.task_dim))
    return ArrivalContext(
        timestamp=timestamp,
        worker=worker,
        worker_feature=np.asarray(worker_feature),
        available_tasks=tasks,
        task_features=task_features,
        task_qualities=rng.random(num_tasks),
    )


def make_feedback(context, ranked, completed_rank=0, quality_gain=0.5):
    completed_id = ranked[completed_rank] if completed_rank is not None else None
    return Feedback(
        timestamp=context.timestamp,
        worker_id=context.worker.worker_id,
        presented_task_ids=list(ranked),
        completed_task_id=completed_id,
        completed_rank=completed_rank,
        completion_reward=1.0 if completed_id is not None else 0.0,
        quality_gain=quality_gain if completed_id is not None else 0.0,
        updated_worker_feature=context.worker_feature,
    )


ALL_POLICIES = [
    lambda schema: RandomPolicy(seed=0),
    lambda schema: GreedyCosinePolicy(),
    lambda schema: GreedyNeuralPolicy(seed=0),
    lambda schema: LinUCBPolicy(),
    lambda schema: TaskrecPMFPolicy(num_categories=schema.num_categories, seed=0),
]


class TestPolicyInterfaceContract:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_rank_returns_permutation_of_available_tasks(self, schema, factory):
        policy = factory(schema)
        context = make_context(schema, num_tasks=6)
        ranked = policy.rank_tasks(context)
        assert sorted(ranked) == context.task_ids

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_empty_pool_returns_empty_ranking(self, schema, factory):
        policy = factory(schema)
        context = make_context(schema, num_tasks=0)
        assert policy.rank_tasks(context) == []

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_observe_feedback_and_end_of_day_do_not_crash(self, schema, factory):
        policy = factory(schema)
        context = make_context(schema, num_tasks=4)
        ranked = policy.rank_tasks(context)
        policy.observe_feedback(context, ranked, make_feedback(context, ranked))
        policy.observe_feedback(context, ranked, make_feedback(context, ranked, completed_rank=None))
        policy.end_of_day(1_440.0)
        policy.reset()
        assert sorted(policy.rank_tasks(context)) == context.task_ids

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_policies_have_names(self, schema, factory):
        assert isinstance(factory(schema).name, str) and factory(schema).name


class TestRandomPolicy:
    def test_ranking_varies_across_calls(self, schema):
        policy = RandomPolicy(seed=0)
        context = make_context(schema, num_tasks=8)
        rankings = {tuple(policy.rank_tasks(context)) for _ in range(10)}
        assert len(rankings) > 1

    def test_reset_restores_seed(self, schema):
        policy = RandomPolicy(seed=5)
        context = make_context(schema, num_tasks=6)
        first = policy.rank_tasks(context)
        policy.reset()
        assert policy.rank_tasks(context) == first


class TestGreedyCosine:
    def test_prefers_tasks_matching_worker_history(self, schema):
        # Worker history concentrated on category 0 / domain 0 / low award bin.
        worker_feature = np.zeros(schema.worker_dim)
        worker_feature[0] = 0.6
        worker_feature[schema.num_categories] = 0.3
        worker_feature[schema.num_categories + schema.num_domains] = 0.1
        policy = GreedyCosinePolicy(objective="worker")
        context = make_context(schema, num_tasks=6, worker_feature=worker_feature)
        ranked = policy.rank_tasks(context)
        top_task = context.task_by_id(ranked[0])
        assert top_task.category == 0

    def test_requester_objective_weights_quality_gain(self, schema):
        policy = GreedyCosinePolicy(objective="requester")
        context = make_context(schema, num_tasks=4)
        ranked = policy.rank_tasks(context)
        assert sorted(ranked) == context.task_ids

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            GreedyCosinePolicy(objective="platform")


class TestLinUCB:
    def test_learns_to_prefer_rewarded_category(self, schema):
        policy = LinUCBPolicy(objective="worker", alpha=0.1)
        worker_feature = np.zeros(schema.worker_dim)
        worker_feature[0] = 1.0
        context = make_context(schema, num_tasks=6, worker_feature=worker_feature)
        rewarded = {tid for tid in context.task_ids if context.task_by_id(tid).category == 0}
        for _ in range(40):
            ranked = policy.rank_tasks(context)
            completed = next(tid for tid in ranked if tid in rewarded)
            rank = ranked.index(completed)
            policy.observe_feedback(context, ranked, make_feedback(context, ranked, completed_rank=rank))
        final = policy.rank_tasks(context)
        assert final[0] in rewarded

    def test_requester_objective_adds_quality_dimensions(self, schema):
        worker_policy = LinUCBPolicy(objective="worker")
        requester_policy = LinUCBPolicy(objective="requester")
        context = make_context(schema, num_tasks=3)
        worker_policy.rank_tasks(context)
        requester_policy.rank_tasks(context)
        assert requester_policy._dim == worker_policy._dim + 2

    def test_reset_clears_model(self, schema):
        policy = LinUCBPolicy()
        context = make_context(schema, num_tasks=3)
        policy.rank_tasks(context)
        policy.reset()
        assert policy._A is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinUCBPolicy(objective="nope")
        with pytest.raises(ValueError):
            LinUCBPolicy(alpha=-1.0)

    def test_sherman_morrison_inverse_stays_consistent(self, schema):
        policy = LinUCBPolicy(alpha=0.0)
        context = make_context(schema, num_tasks=4)
        ranked = policy.rank_tasks(context)
        for _ in range(10):
            policy.observe_feedback(context, ranked, make_feedback(context, ranked))
        np.testing.assert_allclose(policy._A @ policy._A_inv, np.eye(policy._dim), atol=1e-6)


class TestGreedyNN:
    def test_daily_retraining_learns_reward_signal(self, schema):
        policy = GreedyNeuralPolicy(objective="worker", epochs_per_day=80, seed=0)
        worker_feature = np.zeros(schema.worker_dim)
        worker_feature[1] = 1.0
        context = make_context(schema, num_tasks=6, worker_feature=worker_feature)
        rewarded = {tid for tid in context.task_ids if context.task_by_id(tid).category == 1}
        for _ in range(30):
            ranked = policy.rank_tasks(context)
            completed = next(tid for tid in ranked if tid in rewarded)
            rank = ranked.index(completed)
            policy.observe_feedback(context, ranked, make_feedback(context, ranked, completed_rank=rank))
        policy.end_of_day(1_440.0)
        final = policy.rank_tasks(context)
        assert final[0] in rewarded

    def test_end_of_day_without_data_is_safe(self, schema):
        GreedyNeuralPolicy(seed=0).end_of_day(1_440.0)

    def test_example_buffer_is_bounded(self, schema):
        policy = GreedyNeuralPolicy(max_examples=10, seed=0)
        context = make_context(schema, num_tasks=4)
        ranked = policy.rank_tasks(context)
        for _ in range(30):
            policy.observe_feedback(context, ranked, make_feedback(context, ranked))
        assert len(policy._features) <= 10

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            GreedyNeuralPolicy(objective="bad")


class TestTaskrecPMF:
    def test_daily_retraining_learns_worker_task_affinity(self, schema):
        policy = TaskrecPMFPolicy(num_categories=schema.num_categories, epochs_per_day=30, seed=0)
        context = make_context(schema, num_tasks=6)
        rewarded = {tid for tid in context.task_ids if context.task_by_id(tid).category == 2}
        for _ in range(30):
            ranked = policy.rank_tasks(context)
            completed = next(tid for tid in ranked if tid in rewarded)
            rank = ranked.index(completed)
            policy.observe_feedback(context, ranked, make_feedback(context, ranked, completed_rank=rank))
        policy.end_of_day(1_440.0)
        final = policy.rank_tasks(context)
        assert final[0] in rewarded

    def test_interaction_log_is_bounded(self, schema):
        policy = TaskrecPMFPolicy(num_categories=schema.num_categories, max_interactions=20, seed=0)
        context = make_context(schema, num_tasks=4)
        ranked = policy.rank_tasks(context)
        for _ in range(50):
            policy.observe_feedback(context, ranked, make_feedback(context, ranked))
        assert len(policy._interactions) <= 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TaskrecPMFPolicy(num_categories=0)
        with pytest.raises(ValueError):
            TaskrecPMFPolicy(num_categories=3, latent_dim=0)

    def test_reset_clears_latent_vectors(self, schema):
        policy = TaskrecPMFPolicy(num_categories=schema.num_categories, seed=0)
        context = make_context(schema, num_tasks=3)
        ranked = policy.rank_tasks(context)
        policy.observe_feedback(context, ranked, make_feedback(context, ranked))
        policy.end_of_day(1_440.0)
        policy.reset()
        assert policy._worker_vectors == {}
        assert policy._interactions == []
