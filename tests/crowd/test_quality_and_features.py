"""Tests for the Dixit–Stiglitz quality model and feature construction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import (
    DixitStiglitzQuality,
    FeatureSchema,
    Task,
    Worker,
    WorkerFeatureTracker,
    quality_gain,
)


def make_task(task_id=0, category=1, domain=2, award=150.0):
    return Task(
        task_id=task_id,
        requester_id=0,
        category=category,
        domain=domain,
        award=award,
        created_at=0.0,
        deadline=1_000.0,
    )


class TestDixitStiglitzQuality:
    def test_empty_quality_is_zero(self):
        assert DixitStiglitzQuality(2.0).aggregate([]) == 0.0

    def test_p_one_is_sum(self):
        model = DixitStiglitzQuality(1.0)
        assert model.aggregate([0.5, 0.3, 0.2]) == pytest.approx(1.0)

    def test_p_infinity_is_max(self):
        model = DixitStiglitzQuality(math.inf)
        assert model.aggregate([0.5, 0.9, 0.2]) == pytest.approx(0.9)

    def test_p_two_matches_euclidean_norm(self):
        model = DixitStiglitzQuality(2.0)
        assert model.aggregate([0.6, 0.8]) == pytest.approx(1.0)

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            DixitStiglitzQuality(0.5)

    def test_rejects_negative_qualities(self):
        with pytest.raises(ValueError):
            DixitStiglitzQuality(2.0).aggregate([-0.1])

    def test_gain_is_difference(self):
        model = DixitStiglitzQuality(2.0)
        gain = model.gain([0.6], 0.8)
        assert gain == pytest.approx(1.0 - 0.6)

    def test_quality_gain_helper(self):
        assert quality_gain([], 0.7) == pytest.approx(0.7)

    def test_marginal_series_diminishes_for_equal_workers(self):
        model = DixitStiglitzQuality(2.0)
        gains = model.marginal_series([0.5] * 5)
        assert all(later <= earlier + 1e-12 for earlier, later in zip(gains, gains[1:]))

    @settings(max_examples=50, deadline=None)
    @given(
        qualities=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8),
        new_quality=st.floats(min_value=0.0, max_value=1.0),
        p=st.floats(min_value=1.0, max_value=6.0),
    )
    def test_gain_is_non_negative_and_bounded(self, qualities, new_quality, p):
        """Adding a worker never reduces quality and never adds more than q_w (p>=1)."""
        model = DixitStiglitzQuality(p)
        gain = model.gain(qualities, new_quality)
        assert gain >= -1e-9
        assert gain <= new_quality + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        qualities=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8),
        p=st.floats(min_value=1.0, max_value=6.0),
    )
    def test_aggregate_bounded_by_sum_and_max(self, qualities, p):
        """max(q) <= aggregate <= sum(q) for any p >= 1."""
        value = DixitStiglitzQuality(p).aggregate(qualities)
        assert max(qualities) - 1e-9 <= value <= sum(qualities) + 1e-9


class TestFeatureSchema:
    def test_dimensions(self):
        schema = FeatureSchema(num_categories=5, num_domains=3, award_bins=(10.0, 100.0))
        assert schema.num_award_bins == 3
        assert schema.task_dim == 5 + 3 + 3
        assert schema.worker_dim == schema.task_dim

    def test_task_features_are_triple_one_hot(self):
        schema = FeatureSchema(num_categories=5, num_domains=3, award_bins=(10.0, 100.0))
        features = schema.task_features(make_task(category=2, domain=1, award=50.0))
        assert features.sum() == pytest.approx(3.0)
        assert features[2] == 1.0
        assert features[5 + 1] == 1.0
        assert features[5 + 3 + 1] == 1.0  # 10 <= 50 < 100 -> middle bin

    def test_award_bin_edges(self):
        schema = FeatureSchema(num_categories=2, num_domains=2, award_bins=(10.0, 100.0))
        assert schema.award_bin(5.0) == 0
        assert schema.award_bin(10.0) == 1
        assert schema.award_bin(99.9) == 1
        assert schema.award_bin(1_000.0) == 2

    def test_rejects_out_of_range_category(self):
        schema = FeatureSchema(num_categories=2, num_domains=2)
        with pytest.raises(ValueError):
            schema.task_features(make_task(category=5))

    def test_rejects_non_increasing_bins(self):
        with pytest.raises(ValueError):
            FeatureSchema(num_categories=2, num_domains=2, award_bins=(10.0, 10.0))

    def test_rejects_empty_vocabularies(self):
        with pytest.raises(ValueError):
            FeatureSchema(num_categories=0, num_domains=2)


class TestWorkerFeatureTracker:
    def make_schema(self):
        return FeatureSchema(num_categories=4, num_domains=2, award_bins=(100.0,))

    def test_unknown_worker_has_zero_features(self):
        tracker = WorkerFeatureTracker(self.make_schema())
        np.testing.assert_allclose(tracker.features_of(42), np.zeros(4 + 2 + 2))

    def test_features_are_normalised(self):
        schema = self.make_schema()
        tracker = WorkerFeatureTracker(schema)
        tracker.observe_completion(1, make_task(category=0, domain=0, award=50.0))
        tracker.observe_completion(1, make_task(category=1, domain=1, award=200.0))
        features = tracker.features_of(1)
        assert features.sum() == pytest.approx(1.0)

    def test_decay_weights_recent_completions_higher(self):
        schema = self.make_schema()
        tracker = WorkerFeatureTracker(schema, decay=0.5)
        tracker.observe_completion(1, make_task(category=0, domain=0))
        tracker.observe_completion(1, make_task(category=1, domain=0))
        features = tracker.features_of(1)
        assert features[1] > features[0]

    def test_bootstrap_initialises_history(self):
        schema = self.make_schema()
        tracker = WorkerFeatureTracker(schema)
        tracker.bootstrap(3, [make_task(category=2, domain=1)])
        assert tracker.features_of(3)[2] > 0

    def test_reset_clears_everything(self):
        schema = self.make_schema()
        tracker = WorkerFeatureTracker(schema)
        tracker.observe_completion(1, make_task(category=0, domain=0))
        tracker.reset()
        assert tracker.known_workers() == []

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            WorkerFeatureTracker(self.make_schema(), decay=0.0)

    @settings(max_examples=30, deadline=None)
    @given(categories=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
    def test_features_always_normalised_after_any_history(self, categories):
        schema = self.make_schema()
        tracker = WorkerFeatureTracker(schema)
        for index, category in enumerate(categories):
            tracker.observe_completion(7, make_task(task_id=index, category=category, domain=0))
        assert tracker.features_of(7).sum() == pytest.approx(1.0)


class TestEntities:
    def test_task_availability_window(self):
        task = make_task()
        assert task.is_available(0.0)
        assert task.is_available(999.0)
        assert not task.is_available(1_000.0)
        assert task.is_expired(1_000.0)

    def test_record_completion_tracks_contributors(self):
        task = make_task()
        task.record_completion(worker_id=1, timestamp=5.0, worker_quality=0.7)
        task.record_completion(worker_id=2, timestamp=6.0, worker_quality=0.4)
        assert task.completion_count == 2
        assert task.contributor_qualities() == [0.7, 0.4]

    def test_worker_arrival_gap(self):
        worker = Worker(
            worker_id=1,
            quality=0.5,
            category_preference=np.ones(3) / 3,
            domain_preference=np.ones(2) / 2,
        )
        assert worker.record_arrival(100.0) is None
        assert worker.record_arrival(160.0) == pytest.approx(60.0)
        assert worker.arrival_count == 2

    def test_worker_history_is_bounded(self):
        worker = Worker(
            worker_id=1,
            quality=0.5,
            category_preference=np.ones(3) / 3,
            domain_preference=np.ones(2) / 2,
        )
        for task_id in range(60):
            worker.record_completion(task_id, max_history=50)
        assert len(worker.history) == 50
        assert worker.history[0] == 10
