"""Tests for the event-driven platform environment."""

import numpy as np
import pytest

from repro.crowd import (
    CascadeBehavior,
    CrowdsourcingPlatform,
    DixitStiglitzQuality,
    Event,
    EventTrace,
    EventType,
    FeatureSchema,
    InterestModel,
    Task,
    Worker,
)


def build_platform(num_tasks=4, num_workers=2, seed=0):
    schema = FeatureSchema(num_categories=3, num_domains=2, award_bins=(100.0,))
    tasks = {
        i: Task(
            task_id=i,
            requester_id=0,
            category=i % 3,
            domain=i % 2,
            award=50.0 + 100.0 * i,
            created_at=0.0,
            deadline=1_000.0,
        )
        for i in range(num_tasks)
    }
    rng = np.random.default_rng(seed)
    workers = {
        i: Worker(
            worker_id=i,
            quality=0.5 + 0.1 * i,
            category_preference=rng.dirichlet(np.ones(3)),
            domain_preference=rng.dirichlet(np.ones(2)),
            award_sensitivity=0.3,
        )
        for i in range(num_workers)
    }
    platform = CrowdsourcingPlatform(
        tasks, workers, schema, CascadeBehavior(InterestModel()), seed=seed
    )
    return platform, tasks, workers, schema


class TestEventHandling:
    def test_task_creation_and_expiry_update_pool(self):
        platform, *_ = build_platform()
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 1))
        assert [task.task_id for task in platform.available_tasks] == [0, 1]
        platform.apply_event(Event(10.0, EventType.TASK_EXPIRED, 0))
        assert [task.task_id for task in platform.available_tasks] == [1]

    def test_expiring_unknown_task_is_a_noop(self):
        platform, *_ = build_platform()
        platform.apply_event(Event(10.0, EventType.TASK_EXPIRED, 99))
        assert platform.available_tasks == []

    def test_arrival_returns_context_with_features(self):
        platform, _, _, schema = build_platform()
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 1))
        assert context is not None
        assert context.worker.worker_id == 1
        assert context.task_features.shape == (1, schema.task_dim)
        assert context.task_ids == [0]

    def test_arrival_with_empty_pool(self):
        platform, *_ = build_platform()
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        assert context.available_tasks == []
        assert context.task_features.shape == (0, platform.schema.task_dim)

    def test_replay_yields_only_arrivals(self):
        platform, *_ = build_platform()
        trace = EventTrace(
            [
                Event(0.0, EventType.TASK_CREATED, 0),
                Event(1.0, EventType.WORKER_ARRIVAL, 0),
                Event(2.0, EventType.WORKER_ARRIVAL, 1),
            ]
        )
        contexts = list(platform.replay(trace))
        assert len(contexts) == 2

    def test_arrival_statistics_are_updated(self):
        platform, *_ = build_platform()
        platform.apply_event(Event(0.0, EventType.WORKER_ARRIVAL, 0))
        platform.apply_event(Event(30.0, EventType.WORKER_ARRIVAL, 0))
        assert platform.arrival_statistics.total_arrivals == 2
        assert platform.arrival_statistics.same_worker_gaps.total_observations == 1


class TestFeedback:
    def test_completed_feedback_updates_quality_and_history(self):
        platform, tasks, workers, _ = build_platform(seed=3)
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        # Force completion by making the behaviour deterministic.
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        feedback = platform.submit_single(context, 0)
        assert feedback.completed
        assert feedback.completion_reward == 1.0
        assert feedback.quality_gain > 0.0
        assert tasks[0].completion_count == 1
        assert tasks[0].quality == pytest.approx(
            DixitStiglitzQuality(2.0).aggregate([workers[0].quality])
        )
        assert workers[0].history == [0]
        assert feedback.updated_worker_feature is not None

    def test_skipped_feedback_changes_nothing(self):
        platform, tasks, workers, _ = build_platform(seed=3)
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        platform.behavior.interest_model.base_rate = 0.0
        platform.behavior.interest_model.sharpness = 50.0
        # Make the worker hate every category so completion probability ~ 0.
        workers[0].category_preference = np.array([0.0, 0.0, 1.0])
        workers[0].domain_preference = np.array([0.0, 1.0])
        workers[0].award_sensitivity = 0.0
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        feedback = platform.submit_single(context, 0)
        assert not feedback.completed
        assert feedback.completion_reward == 0.0
        assert feedback.quality_gain == 0.0
        assert tasks[0].completion_count == 0

    def test_submit_unavailable_task_raises(self):
        platform, *_ = build_platform()
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        with pytest.raises(KeyError):
            platform.submit_single(context, 99)

    def test_list_feedback_reports_rank(self):
        platform, *_ = build_platform(seed=1)
        for task_id in range(3):
            platform.apply_event(Event(0.0, EventType.TASK_CREATED, task_id))
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        feedback = platform.submit_list(context, [2, 0, 1])
        assert feedback.completed
        assert feedback.completed_rank == 0
        assert feedback.completed_task_id == 2

    def test_quality_accumulates_over_multiple_completions(self):
        platform, tasks, _, _ = build_platform(seed=5)
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        platform.behavior.interest_model.base_rate = 0.999
        first = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        platform.submit_single(first, 0)
        quality_after_one = tasks[0].quality
        second = platform.apply_event(Event(10.0, EventType.WORKER_ARRIVAL, 1))
        feedback = platform.submit_single(second, 0)
        assert tasks[0].quality > quality_after_one
        assert feedback.quality_gain == pytest.approx(tasks[0].quality - quality_after_one)

    def test_statistics_counters(self):
        platform, *_ = build_platform(seed=2)
        platform.apply_event(Event(0.0, EventType.TASK_CREATED, 0))
        platform.behavior.interest_model.base_rate = 0.999
        context = platform.apply_event(Event(5.0, EventType.WORKER_ARRIVAL, 0))
        platform.submit_single(context, 0)
        assert platform.statistics.arrivals == 1
        assert platform.statistics.completions == 1
        assert platform.statistics.average_pool_size == pytest.approx(1.0)


class TestWarmUp:
    def test_warm_up_generates_completions(self):
        platform, *_ = build_platform(num_tasks=4, num_workers=2, seed=0)
        platform.behavior.interest_model.base_rate = 0.9
        events = [Event(0.0, EventType.TASK_CREATED, i) for i in range(4)]
        events += [Event(float(10 + i), EventType.WORKER_ARRIVAL, i % 2) for i in range(20)]
        completions = platform.warm_up(EventTrace(events))
        assert completions > 0
        assert platform.statistics.completions == completions
