"""Tests for arrival statistics, behaviour models and the event trace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import (
    ANY_WORKER_MAX_GAP,
    SAME_WORKER_MAX_GAP,
    CascadeBehavior,
    Event,
    EventTrace,
    EventType,
    GapHistogram,
    InterestModel,
    Task,
    Worker,
    WorkerArrivalStatistics,
)


def make_worker(category_pref=None, domain_pref=None, award_sensitivity=0.0, quality=0.8):
    category_pref = category_pref if category_pref is not None else np.array([0.9, 0.05, 0.05])
    domain_pref = domain_pref if domain_pref is not None else np.array([0.8, 0.2])
    return Worker(
        worker_id=0,
        quality=quality,
        category_preference=np.asarray(category_pref, dtype=float),
        domain_preference=np.asarray(domain_pref, dtype=float),
        award_sensitivity=award_sensitivity,
    )


def make_task(task_id=0, category=0, domain=0, award=200.0):
    return Task(
        task_id=task_id,
        requester_id=0,
        category=category,
        domain=domain,
        award=award,
        created_at=0.0,
        deadline=10_000.0,
    )


class TestGapHistogram:
    def test_probabilities_sum_to_one(self):
        hist = GapHistogram(max_gap=100, bucket_width=10)
        hist.observe_many([5, 15, 15, 95])
        assert hist.probabilities().sum() == pytest.approx(1.0)

    def test_out_of_range_gaps_are_ignored(self):
        hist = GapHistogram(max_gap=100, bucket_width=10)
        hist.observe(500.0)
        hist.observe(-3.0)
        assert hist.total_observations == 0

    def test_probability_concentrates_on_observed_bucket(self):
        hist = GapHistogram(max_gap=100, bucket_width=10, smoothing=1e-6)
        for _ in range(100):
            hist.observe(25.0)
        assert hist.probability_of_gap(22.0) > 0.99
        assert hist.probability_of_gap(85.0) < 0.01

    def test_expected_gap_tracks_observations(self):
        hist = GapHistogram(max_gap=100, bucket_width=10, smoothing=1e-9)
        for _ in range(50):
            hist.observe(45.0)
        assert hist.expected_gap() == pytest.approx(45.0, abs=5.0)

    def test_sample_within_support(self):
        hist = GapHistogram(max_gap=60, bucket_width=5)
        hist.observe_many([10, 20, 30])
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert 0 <= hist.sample(rng) <= 60

    def test_top_buckets_ordering(self):
        hist = GapHistogram(max_gap=100, bucket_width=10, smoothing=1e-9)
        hist.observe_many([15] * 10 + [55] * 3)
        top = hist.top_buckets(2)
        assert top[0][1] >= top[1][1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GapHistogram(max_gap=0)
        with pytest.raises(ValueError):
            GapHistogram(max_gap=10, bucket_width=0)

    @settings(max_examples=30, deadline=None)
    @given(gaps=st.lists(st.floats(min_value=0, max_value=100), min_size=0, max_size=50))
    def test_probabilities_always_normalised(self, gaps):
        hist = GapHistogram(max_gap=100, bucket_width=7)
        hist.observe_many(gaps)
        assert hist.probabilities().sum() == pytest.approx(1.0)


class TestWorkerArrivalStatistics:
    def test_same_and_any_worker_gaps_are_separated(self):
        stats = WorkerArrivalStatistics(feature_dim=3)
        stats.record_arrival(1, 0.0)
        stats.record_arrival(2, 10.0)
        stats.record_arrival(1, 30.0)
        # Any-worker gaps: 10 and 20; same-worker gap for worker 1: 30.
        assert stats.any_worker_gaps.total_observations == 2
        assert stats.same_worker_gaps.total_observations == 1

    def test_new_worker_rate(self):
        stats = WorkerArrivalStatistics(feature_dim=2)
        stats.record_arrival(1, 0.0)
        stats.record_arrival(2, 5.0)
        stats.record_arrival(1, 9.0)
        assert stats.new_worker_rate == pytest.approx(2.0 / 3.0)

    def test_average_feature(self):
        stats = WorkerArrivalStatistics(feature_dim=2)
        stats.record_arrival(1, 0.0, np.array([1.0, 0.0]))
        stats.record_arrival(2, 1.0, np.array([0.0, 1.0]))
        np.testing.assert_allclose(stats.average_worker_feature(), [0.5, 0.5])

    def test_feature_dimension_is_validated(self):
        stats = WorkerArrivalStatistics(feature_dim=2)
        with pytest.raises(ValueError):
            stats.record_arrival(1, 0.0, np.zeros(3))

    def test_next_worker_distribution_sums_to_one(self):
        stats = WorkerArrivalStatistics(feature_dim=2)
        for t in range(5):
            stats.record_arrival(t % 2, float(t * 30), np.array([1.0, 0.0]))
        distribution = stats.next_worker_distribution(200.0, lambda w: np.array([1.0, 0.0]))
        total = sum(probability for _, probability, _ in distribution)
        assert total == pytest.approx(1.0)

    def test_expected_next_worker_feature_shape(self):
        stats = WorkerArrivalStatistics(feature_dim=3)
        stats.record_arrival(1, 0.0, np.array([1.0, 0.0, 0.0]))
        stats.record_arrival(2, 20.0, np.array([0.0, 1.0, 0.0]))
        expectation = stats.expected_next_worker_feature(40.0, lambda w: np.eye(3)[w % 3])
        assert expectation.shape == (3,)
        assert np.all(expectation >= 0)

    def test_support_constants(self):
        assert SAME_WORKER_MAX_GAP == 10_080
        assert ANY_WORKER_MAX_GAP == 60


class TestInterestModel:
    def test_preferred_category_scores_higher(self):
        model = InterestModel()
        worker = make_worker()
        liked = make_task(category=0, domain=0)
        disliked = make_task(category=2, domain=1)
        assert model.completion_probability(worker, liked) > model.completion_probability(
            worker, disliked
        )

    def test_payment_driven_worker_prefers_high_award(self):
        model = InterestModel()
        worker = make_worker(award_sensitivity=1.0)
        cheap = make_task(award=10.0)
        expensive = make_task(award=900.0)
        assert model.completion_probability(worker, expensive) > model.completion_probability(
            worker, cheap
        )

    def test_probability_in_unit_interval(self):
        model = InterestModel()
        rng = np.random.default_rng(0)
        for _ in range(50):
            worker = make_worker(
                category_pref=rng.dirichlet(np.ones(3)),
                domain_pref=rng.dirichlet(np.ones(2)),
                award_sensitivity=rng.random(),
            )
            task = make_task(category=int(rng.integers(3)), domain=int(rng.integers(2)))
            probability = model.completion_probability(worker, task)
            assert 0.0 <= probability <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InterestModel(sharpness=0.0)
        with pytest.raises(ValueError):
            InterestModel(base_rate=1.5)


class TestCascadeBehavior:
    def test_single_response_respects_probability_extremes(self):
        rng = np.random.default_rng(0)
        behavior = CascadeBehavior(InterestModel(base_rate=0.0, sharpness=20.0))
        worker = make_worker()
        liked = make_task(category=0, domain=0)
        outcomes = [behavior.respond_to_single(worker, liked, rng).completed for _ in range(100)]
        assert sum(outcomes) > 50

    def test_list_response_returns_valid_rank(self):
        rng = np.random.default_rng(1)
        behavior = CascadeBehavior(InterestModel())
        worker = make_worker()
        tasks = [make_task(task_id=i, category=i % 3) for i in range(5)]
        outcome = behavior.respond_to_list(worker, tasks, rng)
        if outcome.completed:
            assert 0 <= outcome.completed_rank < 5
            assert outcome.completed_task_id == tasks[outcome.completed_rank].task_id

    def test_empty_list_is_always_skipped(self):
        rng = np.random.default_rng(2)
        behavior = CascadeBehavior(InterestModel())
        outcome = behavior.respond_to_list(make_worker(), [], rng)
        assert not outcome.completed

    def test_preferred_order_puts_matching_tasks_first(self):
        behavior = CascadeBehavior(InterestModel())
        worker = make_worker()
        tasks = [make_task(task_id=0, category=2, domain=1), make_task(task_id=1, category=0, domain=0)]
        order = behavior.preferred_order(worker, tasks)
        assert order[0] == 1

    def test_better_ranking_yields_more_top_completions(self):
        """A ranking aligned with preferences completes more often at rank 0."""
        rng_good = np.random.default_rng(3)
        rng_bad = np.random.default_rng(3)
        behavior = CascadeBehavior(InterestModel())
        worker = make_worker()
        tasks = [make_task(task_id=i, category=i % 3, domain=i % 2) for i in range(6)]
        good_order = [tasks[i] for i in np.argsort([-worker.category_preference[t.category] for t in tasks])]
        bad_order = list(reversed(good_order))
        good_top = sum(
            behavior.respond_to_list(worker, good_order, rng_good).completed_rank == 0
            for _ in range(200)
        )
        bad_top = sum(
            behavior.respond_to_list(worker, bad_order, rng_bad).completed_rank == 0
            for _ in range(200)
        )
        assert good_top > bad_top

    def test_invalid_position_decay(self):
        with pytest.raises(ValueError):
            CascadeBehavior(InterestModel(), position_decay=0.0)


class TestEventTrace:
    def test_events_are_sorted_by_time(self):
        trace = EventTrace(
            [
                Event(50.0, EventType.WORKER_ARRIVAL, 1),
                Event(10.0, EventType.TASK_CREATED, 2),
                Event(30.0, EventType.TASK_EXPIRED, 3),
            ]
        )
        assert [event.timestamp for event in trace] == [10.0, 30.0, 50.0]

    def test_simultaneous_events_apply_expiry_before_arrival(self):
        trace = EventTrace(
            [
                Event(10.0, EventType.WORKER_ARRIVAL, 1),
                Event(10.0, EventType.TASK_EXPIRED, 2),
                Event(10.0, EventType.TASK_CREATED, 3),
            ]
        )
        assert [event.event_type for event in trace] == [
            EventType.TASK_EXPIRED,
            EventType.TASK_CREATED,
            EventType.WORKER_ARRIVAL,
        ]

    def test_split_warmup(self):
        trace = EventTrace(
            [Event(float(t), EventType.WORKER_ARRIVAL, t) for t in range(10)]
        )
        warm, online = trace.split_warmup(5.0)
        assert len(warm) == 5
        assert len(online) == 5

    def test_monthly_counts(self):
        from repro.crowd.entities import MINUTES_PER_MONTH

        trace = EventTrace(
            [
                Event(1.0, EventType.TASK_CREATED, 0),
                Event(MINUTES_PER_MONTH + 1.0, EventType.TASK_CREATED, 1),
                Event(MINUTES_PER_MONTH + 2.0, EventType.TASK_CREATED, 2),
            ]
        )
        assert trace.monthly_counts(EventType.TASK_CREATED) == [1, 2]

    def test_between_filters_inclusive_exclusive(self):
        trace = EventTrace([Event(float(t), EventType.WORKER_ARRIVAL, t) for t in range(5)])
        assert len(trace.between(1.0, 3.0)) == 2

    def test_of_type(self):
        trace = EventTrace(
            [
                Event(1.0, EventType.TASK_CREATED, 0),
                Event(2.0, EventType.WORKER_ARRIVAL, 1),
            ]
        )
        assert len(trace.of_type(EventType.WORKER_ARRIVAL)) == 1

    def test_empty_trace(self):
        trace = EventTrace([])
        assert len(trace) == 0
        assert trace.num_months() == 0
        assert trace.start_time == 0.0
