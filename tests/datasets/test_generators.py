"""Tests for the CrowdSpring-like generator, synthetic variants and statistics."""

import numpy as np
import pytest

from repro.crowd import EventType
from repro.datasets import (
    CrowdSpringConfig,
    CrowdSpringGenerator,
    add_worker_quality_noise,
    compute_arrival_gaps,
    compute_monthly_statistics,
    generate_crowdspring,
    resample_arrival_density,
    scalability_snapshot,
)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_crowdspring(scale=0.04, num_months=3, seed=11)


class TestCrowdSpringConfig:
    def test_scaled_reduces_volume(self):
        config = CrowdSpringConfig().scaled(0.1)
        assert config.num_workers < CrowdSpringConfig().num_workers
        assert config.arrivals_per_month < CrowdSpringConfig().arrivals_per_month

    def test_scaled_keeps_pool_meaningful(self):
        """Task volume shrinks slower than arrivals so the pool stays non-trivial."""
        config = CrowdSpringConfig().scaled(0.04)
        assert config.tasks_per_month >= 8
        assert config.tasks_per_month > CrowdSpringConfig().tasks_per_month * 0.04

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            CrowdSpringConfig().scaled(0.0)

    def test_scaled_overrides_months(self):
        config = CrowdSpringConfig().scaled(0.5, num_months=4)
        assert config.num_months == 4


class TestCrowdSpringGenerator:
    def test_entities_are_consistent(self, small_dataset):
        dataset = small_dataset
        assert len(dataset.workers) == dataset.config.num_workers
        for task in dataset.tasks.values():
            assert 0 <= task.category < dataset.config.num_categories
            assert 0 <= task.domain < dataset.config.num_domains
            assert task.deadline > task.created_at
            assert task.award > 0

    def test_trace_contains_all_event_types(self, small_dataset):
        trace = small_dataset.trace
        assert len(trace.of_type(EventType.TASK_CREATED)) == len(small_dataset.tasks)
        assert len(trace.of_type(EventType.TASK_EXPIRED)) == len(small_dataset.tasks)
        assert len(trace.of_type(EventType.WORKER_ARRIVAL)) > 0

    def test_arrival_volume_matches_config(self, small_dataset):
        arrivals = small_dataset.trace.of_type(EventType.WORKER_ARRIVAL)
        expected = small_dataset.config.arrivals_per_month * small_dataset.config.num_months
        assert abs(len(arrivals) - expected) / expected < 0.2

    def test_worker_preferences_are_distributions(self, small_dataset):
        for worker in small_dataset.workers.values():
            np.testing.assert_allclose(worker.category_preference.sum(), 1.0)
            np.testing.assert_allclose(worker.domain_preference.sum(), 1.0)
            assert 0.0 <= worker.quality <= 1.0
            assert 0.0 <= worker.award_sensitivity <= 1.0

    def test_bootstrap_completions_reference_real_tasks(self, small_dataset):
        for worker_id, task_ids in small_dataset.bootstrap_completions.items():
            assert worker_id in small_dataset.workers
            assert all(task_id in small_dataset.tasks for task_id in task_ids)
            assert len(task_ids) >= 1

    def test_generation_is_deterministic_per_seed(self):
        first = generate_crowdspring(scale=0.03, num_months=2, seed=5)
        second = generate_crowdspring(scale=0.03, num_months=2, seed=5)
        assert len(first.trace) == len(second.trace)
        assert first.trace[0].timestamp == second.trace[0].timestamp
        third = generate_crowdspring(scale=0.03, num_months=2, seed=6)
        assert len(third.trace) != len(first.trace) or third.trace[0].timestamp != first.trace[0].timestamp

    def test_fresh_entities_are_independent_copies(self, small_dataset):
        tasks, workers = small_dataset.fresh_entities()
        task_id = next(iter(tasks))
        tasks[task_id].quality = 123.0
        assert small_dataset.tasks[task_id].quality != 123.0
        worker_id = next(iter(workers))
        workers[worker_id].record_completion(0)
        assert small_dataset.workers[worker_id].history == []


class TestMonthlyStatistics:
    def test_monthly_counts_have_expected_shape(self, small_dataset):
        stats = compute_monthly_statistics(small_dataset)
        assert stats.num_months >= small_dataset.config.num_months
        assert all(count >= 0 for count in stats.new_tasks)
        assert all(size >= 0 for size in stats.average_available_tasks)

    def test_as_rows_round_trip(self, small_dataset):
        stats = compute_monthly_statistics(small_dataset)
        rows = stats.as_rows()
        assert len(rows) == stats.num_months
        assert rows[0]["new_tasks"] == stats.new_tasks[0]

    def test_arrival_gap_statistics(self, small_dataset):
        gaps = compute_arrival_gaps(small_dataset.trace)
        arrivals = len(small_dataset.trace.of_type(EventType.WORKER_ARRIVAL))
        assert len(gaps.any_worker_gaps) == arrivals - 1
        assert (gaps.any_worker_gaps >= 0).all()
        assert (gaps.same_worker_gaps >= 0).all()
        assert 0.0 <= gaps.fraction_any_worker_below(60.0) <= 1.0

    def test_histogram_output_shapes(self, small_dataset):
        gaps = compute_arrival_gaps(small_dataset.trace)
        centers, counts = gaps.any_worker_histogram(max_minutes=210, bin_width=10)
        assert len(centers) == len(counts) == 21


class TestSyntheticVariants:
    def test_resample_density_changes_arrival_count(self, small_dataset):
        doubled = resample_arrival_density(small_dataset, 2.0, seed=0)
        halved = resample_arrival_density(small_dataset, 0.5, seed=0)
        base = len(small_dataset.trace.of_type(EventType.WORKER_ARRIVAL))
        assert len(doubled.trace.of_type(EventType.WORKER_ARRIVAL)) == 2 * base
        assert len(halved.trace.of_type(EventType.WORKER_ARRIVAL)) == base // 2

    def test_resample_keeps_task_events(self, small_dataset):
        resampled = resample_arrival_density(small_dataset, 1.5, seed=0)
        assert len(resampled.trace.of_type(EventType.TASK_CREATED)) == len(
            small_dataset.trace.of_type(EventType.TASK_CREATED)
        )

    def test_resample_rejects_bad_rate(self, small_dataset):
        with pytest.raises(ValueError):
            resample_arrival_density(small_dataset, 0.0)

    def test_quality_noise_shifts_mean(self, small_dataset):
        noisy_down = add_worker_quality_noise(small_dataset, -0.4, seed=0)
        noisy_up = add_worker_quality_noise(small_dataset, 0.2, seed=0)
        base_mean = np.mean([w.quality for w in small_dataset.workers.values()])
        down_mean = np.mean([w.quality for w in noisy_down.workers.values()])
        up_mean = np.mean([w.quality for w in noisy_up.workers.values()])
        assert down_mean < base_mean
        assert up_mean >= base_mean - 0.05

    def test_quality_noise_stays_in_unit_interval(self, small_dataset):
        noisy = add_worker_quality_noise(small_dataset, -0.6, seed=0)
        for worker in noisy.workers.values():
            assert 0.0 <= worker.quality <= 1.0

    def test_quality_noise_does_not_mutate_original(self, small_dataset):
        before = [w.quality for w in small_dataset.workers.values()]
        add_worker_quality_noise(small_dataset, 0.3, seed=0)
        after = [w.quality for w in small_dataset.workers.values()]
        assert before == after

    def test_scalability_snapshot(self):
        tasks, worker, schema = scalability_snapshot(100, seed=0)
        assert len(tasks) == 100
        assert len({task.task_id for task in tasks}) == 100
        assert worker.category_preference.shape == (schema.num_categories,)

    def test_scalability_snapshot_rejects_zero(self):
        with pytest.raises(ValueError):
            scalability_snapshot(0)
