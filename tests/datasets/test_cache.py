"""On-disk dataset trace cache: bit-identical round-trips, read-only workers.

The sweep engine's cross-cell cache is only sound if a cached dataset is
indistinguishable from a regenerated one — same entities, same event order,
and (the acceptance-level check) byte-for-byte identical simulation results.
"""

import numpy as np
import pytest

from repro.api import DatasetSpec, ExperimentSpec, PolicySpec, run_spec
from repro.datasets import (
    cached_crowdspring,
    generate_crowdspring,
    load_dataset,
    save_dataset,
    trace_cache_name,
)
from repro.eval import RunnerConfig
from repro.nn import save_checkpoint

SCALE, MONTHS, SEED = 0.03, 2, 1


@pytest.fixture(scope="module")
def fresh_dataset():
    return generate_crowdspring(scale=SCALE, num_months=MONTHS, seed=SEED)


def assert_datasets_equal(a, b):
    assert a.config == b.config
    assert a.schema == b.schema
    assert set(a.tasks) == set(b.tasks)
    for task_id in a.tasks:
        ta, tb = a.tasks[task_id], b.tasks[task_id]
        for field in ("requester_id", "category", "domain", "award", "created_at", "deadline"):
            assert getattr(ta, field) == getattr(tb, field), (task_id, field)
    assert set(a.workers) == set(b.workers)
    for worker_id in a.workers:
        wa, wb = a.workers[worker_id], b.workers[worker_id]
        assert wa.quality == wb.quality
        assert wa.award_sensitivity == wb.award_sensitivity
        np.testing.assert_array_equal(wa.category_preference, wb.category_preference)
        np.testing.assert_array_equal(wa.domain_preference, wb.domain_preference)
    assert {r.requester_id: r.task_ids for r in a.requesters.values()} == {
        r.requester_id: r.task_ids for r in b.requesters.values()
    }
    assert len(a.trace) == len(b.trace)
    for ea, eb in zip(a.trace, b.trace):
        assert (ea.timestamp, ea.event_type, ea.subject_id) == (
            eb.timestamp,
            eb.event_type,
            eb.subject_id,
        )
    assert a.bootstrap_completions == b.bootstrap_completions


class TestRoundTrip:
    def test_save_load_preserves_everything(self, fresh_dataset, tmp_path):
        path = save_dataset(fresh_dataset, tmp_path / "ds.npz")
        assert_datasets_equal(load_dataset(path), fresh_dataset)

    def test_cached_run_results_are_bit_identical(self, fresh_dataset, tmp_path):
        """The acceptance check: simulate on cached vs fresh, compare exactly."""
        path = save_dataset(fresh_dataset, tmp_path / "ds.npz")
        cached = load_dataset(path)
        spec = ExperimentSpec(
            name="cache-equivalence",
            dataset=DatasetSpec(scale=SCALE, num_months=MONTHS, seed=SEED),
            runner=RunnerConfig(seed=0, max_arrivals=30),
            policies=[
                PolicySpec("random", {"seed": 0}),
                PolicySpec(
                    "ddqn-worker",
                    {"hidden_dim": 8, "num_heads": 2, "batch_size": 8, "train_interval": 4, "seed": 0},
                ),
            ],
        )
        fresh_results = run_spec(spec, dataset=fresh_dataset)
        cached_results = run_spec(spec, dataset=cached)
        assert list(fresh_results) == list(cached_results)
        for label in fresh_results:
            a, b = fresh_results[label], cached_results[label]
            assert a.arrivals == b.arrivals
            assert a.completions == b.completions
            for field in ("cr", "kcr", "ndcg_cr", "qg", "kqg", "ndcg_qg"):
                assert getattr(a, field).monthly == getattr(b, field).monthly, (label, field)
                assert getattr(a, field).final == getattr(b, field).final, (label, field)

    def test_non_dataset_checkpoint_is_rejected(self, tmp_path):
        path = save_checkpoint({"format": "something/else"}, tmp_path / "other.npz")
        with pytest.raises(ValueError, match="not a dataset cache file"):
            load_dataset(path)


class TestCachedCrowdspring:
    def test_miss_generates_and_writes(self, tmp_path):
        dataset = cached_crowdspring(SCALE, MONTHS, SEED, tmp_path)
        assert (tmp_path / trace_cache_name(SCALE, MONTHS, SEED)).exists()
        assert_datasets_equal(dataset, generate_crowdspring(SCALE, num_months=MONTHS, seed=SEED))

    def test_hit_reads_the_cached_file(self, tmp_path):
        cached_crowdspring(SCALE, MONTHS, SEED, tmp_path)
        again = cached_crowdspring(SCALE, MONTHS, SEED, tmp_path)
        assert_datasets_equal(again, generate_crowdspring(SCALE, num_months=MONTHS, seed=SEED))

    def test_read_only_miss_does_not_write(self, tmp_path):
        dataset = cached_crowdspring(SCALE, MONTHS, SEED, tmp_path, write=False)
        assert not any(tmp_path.iterdir()), "read-only consumer wrote to the cache"
        assert dataset.trace is not None

    def test_dataset_spec_build_uses_the_cache(self, tmp_path):
        spec = DatasetSpec(scale=SCALE, num_months=MONTHS, seed=SEED)
        first = spec.build(cache_dir=tmp_path)
        assert (tmp_path / trace_cache_name(SCALE, MONTHS, SEED)).exists()
        second = spec.build(cache_dir=tmp_path, write_cache=False)
        assert_datasets_equal(first, second)
