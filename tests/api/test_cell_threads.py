"""Per-policy fan-out inside a cell (``cell_threads``): float-identical.

Every policy run owns its entity copies and RNGs (``fresh_entities`` is a
pure copy and ``SimulationRunner.run`` builds a fresh per-run state), so
overlapping a spec's policies on threads changes wall-clock only.  These
tests pin the float identity for ``run_spec`` and the plumbing through
``SweepRunner`` job payloads and the CLI flags.
"""

import pytest

from repro.api import (
    DatasetSpec,
    ExperimentSpec,
    PolicySpec,
    SweepAxis,
    SweepSpec,
    run_spec,
    run_sweep,
)
from repro.api.sweep import SweepRunner
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig
from tests.eval.test_determinism import assert_results_identical

TINY_DDQN = {"hidden_dim": 8, "num_heads": 2, "batch_size": 4, "seed": 0, "max_tasks": 12}


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


def tiny_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="cell-threads",
        dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
        runner=RunnerConfig(seed=0, max_arrivals=25, max_warmup_observations=12),
        policies=[
            PolicySpec("ddqn-worker", dict(TINY_DDQN)),
            PolicySpec("random", {"seed": 0}),
            PolicySpec("greedy-cosine", {"objective": "worker"}),
        ],
    )


class TestRunSpecCellThreads:
    def test_threaded_results_float_identical_to_serial(self, dataset):
        serial = run_spec(tiny_spec(), dataset=dataset)
        threaded = run_spec(tiny_spec(), dataset=dataset, cell_threads=3)
        assert list(serial) == list(threaded)
        for label in serial:
            assert_results_identical(serial[label], threaded[label])

    def test_more_threads_than_policies_is_fine(self, dataset):
        serial = run_spec(tiny_spec(), dataset=dataset)
        threaded = run_spec(tiny_spec(), dataset=dataset, cell_threads=16)
        for label in serial:
            assert_results_identical(serial[label], threaded[label])

    def test_invalid_cell_threads_rejected(self, dataset):
        with pytest.raises(ValueError, match="cell_threads"):
            run_spec(tiny_spec(), dataset=dataset, cell_threads=0)


class TestSweepCellThreads:
    def sweep(self) -> SweepSpec:
        return SweepSpec(
            name="cell-threads-sweep",
            base=tiny_spec(),
            axes=[SweepAxis(target="dataset", key="seed", values=[1, 2])],
            replicate_axis="dataset.seed",
        )

    def test_sweep_aggregate_bit_identical_to_serial(self, tmp_path):
        serial = run_sweep(self.sweep(), tmp_path / "serial")
        threaded = run_sweep(self.sweep(), tmp_path / "threaded", cell_threads=3)
        assert threaded == serial

    def test_runner_plumbs_cell_threads_into_job_payloads(self, tmp_path):
        runner = SweepRunner(self.sweep(), tmp_path / "sweep", cell_threads=2)
        jobs = runner._jobs(runner.spec.expand())
        assert jobs and all(payload["cell_threads"] == 2 for _, payload in jobs)
        plain = SweepRunner(self.sweep(), tmp_path / "plain")
        assert all(
            "cell_threads" not in payload for _, payload in plain._jobs(plain.spec.expand())
        )

    def test_runner_rejects_invalid_cell_threads(self, tmp_path):
        with pytest.raises(ValueError, match="cell_threads"):
            SweepRunner(self.sweep(), tmp_path / "bad", cell_threads=0)


class TestCliFlags:
    def test_run_and_sweep_parsers_accept_cell_threads(self):
        from repro.api.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(["run", "spec.json", "--cell-threads", "4"])
        assert args.cell_threads == 4
        args = parser.parse_args(["sweep", "run", "grid.json", "--cell-threads", "2"])
        assert args.cell_threads == 2
        args = parser.parse_args(["sweep", "resume", "dir", "--cell-threads", "2"])
        assert args.cell_threads == 2

    def test_bench_parser_accepts_async_and_blas_threads(self):
        from repro.api.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(
            ["bench", "--suite", "endtoend", "--preset", "ci", "--async", "--blas-threads", "2"]
        )
        assert args.async_training and args.blas_threads == 2 and args.preset == "ci"
        args = parser.parse_args(["bench"])
        assert not args.async_training and args.blas_threads is None
