"""Smoke tests for the ``python -m repro`` CLI.

These run the real subprocess from the repository root (the tier-1 command's
working directory), so the whole shell path — spec parsing, registry
construction, simulation, report writing and the perf-harness forwarding —
is exercised end to end on tiny inputs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TINY_SPEC = REPO_ROOT / "examples" / "specs" / "ci_tiny.json"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_bundled_tiny_spec_is_valid_json():
    from repro.api import ExperimentSpec

    spec = ExperimentSpec.load(TINY_SPEC)
    assert spec.name == "ci-tiny"
    assert [entry.policy for entry in spec.policies] == ["random", "ddqn-worker"]


def test_cli_policies_lists_the_registry():
    completed = run_cli("policies")
    assert completed.returncode == 0, completed.stderr
    for name in ("random", "linucb", "ddqn-worker"):
        assert name in completed.stdout


def test_cli_policies_json_is_machine_readable():
    completed = run_cli("policies", "--json")
    assert completed.returncode == 0, completed.stderr
    payload = json.loads(completed.stdout)
    assert payload["count"] == len(payload["policies"])
    names = {entry["name"] for entry in payload["policies"]}
    assert {"random", "linucb", "ddqn-worker"} <= names
    for entry in payload["policies"]:
        assert entry["description"]


def test_cli_serve_and_loadgen_forward_help():
    for subcommand in ("serve", "loadgen"):
        completed = run_cli(subcommand, "--help")
        assert completed.returncode == 0, completed.stderr
        assert f"repro {subcommand}" in completed.stdout
        assert "spec" in completed.stdout


def test_cli_serve_missing_spec_fails_cleanly(tmp_path):
    completed = run_cli("serve", str(tmp_path / "nope.json"))
    assert completed.returncode != 0
    assert "nope.json" in completed.stderr


def test_cli_run_executes_the_bundled_spec(tmp_path):
    output = tmp_path / "results.json"
    completed = run_cli("run", str(TINY_SPEC), "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    assert "ci-tiny" in completed.stdout
    payload = json.loads(output.read_text())
    assert payload["spec"]["name"] == "ci-tiny"
    assert set(payload["results"]) == {"Random", "DDQN"}
    for row in payload["results"].values():
        assert row["arrivals"] > 0
        assert "nDCG-CR" in row


def test_cli_run_missing_spec_fails_cleanly(tmp_path):
    completed = run_cli("run", str(tmp_path / "nope.json"))
    assert completed.returncode != 0
    assert "nope.json" in completed.stderr


CHEAP_SWEEP = {
    "name": "cli-sweep",
    "base": {
        "name": "cli-sweep-cell",
        "dataset": {"scale": 0.03, "num_months": 2, "seed": 1},
        "runner": {"seed": 0, "max_arrivals": 20},
        "policies": [
            {"policy": "random", "kwargs": {"seed": 0}},
            {"policy": "greedy-cosine", "kwargs": {"objective": "worker"}},
        ],
    },
    "axes": [{"target": "dataset", "key": "seed", "values": [1, 2]}],
    "replicate_axis": "dataset.seed",
}


def test_bundled_ci_sweep_spec_is_valid():
    from repro.api import SweepSpec

    spec = SweepSpec.load(REPO_ROOT / "examples" / "specs" / "ci_sweep.json")
    assert spec.name == "ci-sweep"
    assert spec.replicate_axis == "dataset.seed"
    assert len(spec.expand()) == 4
    assert spec.base.runner.checkpoint_every == 10


def test_bundled_fig9_sweep_spec_is_valid():
    from repro.api import SweepSpec

    spec = SweepSpec.load(REPO_ROOT / "examples" / "specs" / "fig9_balance_sweep.json")
    cells = spec.expand()
    assert len(cells) == 6  # 3 weights x 2 seed replicates
    weights = {cell.assignments["ddqn.worker_weight"] for cell in cells}
    assert weights == {0.0, 0.5, 1.0}


def test_cli_sweep_run_status_and_resume(tmp_path):
    spec_path = tmp_path / "sweep_spec.json"
    spec_path.write_text(json.dumps(CHEAP_SWEEP))
    sweep_dir = tmp_path / "sweep"

    completed = run_cli(
        "sweep", "run", str(spec_path), "--dir", str(sweep_dir), "--workers", "2"
    )
    assert completed.returncode == 0, completed.stderr
    assert "2 cells" in completed.stdout
    results = json.loads((sweep_dir / "results.json").read_text())
    assert results["groups"]["all"]["replicates"] == 2
    assert set(results["groups"]["all"]["policies"]) == {"Random", "Greedy CS"}

    status = run_cli("sweep", "status", str(sweep_dir))
    assert status.returncode == 0, status.stderr
    assert "2/2 cells finished" in status.stdout

    # Interrupt: drop one finished cell, status flips to pending, resume
    # re-runs only that cell and restores the identical aggregate.
    victim = sweep_dir / "cells" / "dataset.seed=2.json"
    victim.unlink()
    assert run_cli("sweep", "status", str(sweep_dir)).returncode == 1
    resumed = run_cli("sweep", "resume", str(sweep_dir), "--workers", "2")
    assert resumed.returncode == 0, resumed.stderr
    assert "1/2 cells already on disk" in resumed.stdout
    assert json.loads((sweep_dir / "results.json").read_text()) == results


def test_cli_sweep_run_missing_spec_fails_cleanly(tmp_path):
    completed = run_cli("sweep", "run", str(tmp_path / "nope.json"))
    assert completed.returncode != 0
    assert "nope.json" in completed.stderr


@pytest.mark.perf_smoke
def test_cli_bench_quick_writes_a_report(tmp_path):
    output = tmp_path / "bench.json"
    completed = run_cli("bench", "--quick", "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    report = json.loads(output.read_text())
    assert report["mode"] == "quick"
    assert "train_step" in report["results"]
    # --suite all (the default) also writes the end-to-end throughput report.
    endtoend = json.loads((tmp_path / "bench.endtoend.json").read_text())
    assert endtoend["mode"] == "quick"
    assert "ddqn" in endtoend["policies"]
    assert endtoend["policies"]["ddqn"]["arrivals_per_s"] > 0


@pytest.mark.perf_smoke
def test_cli_bench_endtoend_suite_only(tmp_path):
    output = tmp_path / "endtoend.json"
    completed = run_cli(
        "bench", "--quick", "--suite", "endtoend", "--output", str(output)
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(output.read_text())
    assert "ddqn-float32" in report["policies"]
    assert report["decision_path"]["batched_speedup"] > 0


def test_cli_run_vectorize_matches_serial(tmp_path):
    serial_out = tmp_path / "serial.json"
    vector_out = tmp_path / "vector.json"
    serial = run_cli("run", str(TINY_SPEC), "--output", str(serial_out))
    assert serial.returncode == 0, serial.stderr
    vectorized = run_cli(
        "run", str(TINY_SPEC), "--vectorize", "2", "--output", str(vector_out)
    )
    assert vectorized.returncode == 0, vectorized.stderr
    serial_doc = json.loads(serial_out.read_text())
    vector_doc = json.loads(vector_out.read_text())
    for label, row in serial_doc["results"].items():
        for key, value in row.items():
            if key.startswith("mean_"):
                continue  # timing noise
            assert vector_doc["results"][label][key] == value, (label, key)


def test_cli_sweep_run_vectorized(tmp_path):
    sweep_dir = tmp_path / "sweep-vec"
    completed = run_cli(
        "sweep",
        "run",
        str(REPO_ROOT / "examples" / "specs" / "ci_sweep.json"),
        "--dir",
        str(sweep_dir),
        "--vectorize",
        "2",
    )
    assert completed.returncode == 0, completed.stderr
    assert (sweep_dir / "results.json").exists()
