"""Smoke tests for the ``python -m repro`` CLI.

These run the real subprocess from the repository root (the tier-1 command's
working directory), so the whole shell path — spec parsing, registry
construction, simulation, report writing and the perf-harness forwarding —
is exercised end to end on tiny inputs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TINY_SPEC = REPO_ROOT / "examples" / "specs" / "ci_tiny.json"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_bundled_tiny_spec_is_valid_json():
    from repro.api import ExperimentSpec

    spec = ExperimentSpec.load(TINY_SPEC)
    assert spec.name == "ci-tiny"
    assert [entry.policy for entry in spec.policies] == ["random", "ddqn-worker"]


def test_cli_policies_lists_the_registry():
    completed = run_cli("policies")
    assert completed.returncode == 0, completed.stderr
    for name in ("random", "linucb", "ddqn-worker"):
        assert name in completed.stdout


def test_cli_run_executes_the_bundled_spec(tmp_path):
    output = tmp_path / "results.json"
    completed = run_cli("run", str(TINY_SPEC), "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    assert "ci-tiny" in completed.stdout
    payload = json.loads(output.read_text())
    assert payload["spec"]["name"] == "ci-tiny"
    assert set(payload["results"]) == {"Random", "DDQN"}
    for row in payload["results"].values():
        assert row["arrivals"] > 0
        assert "nDCG-CR" in row


def test_cli_run_missing_spec_fails_cleanly(tmp_path):
    completed = run_cli("run", str(tmp_path / "nope.json"))
    assert completed.returncode != 0
    assert "nope.json" in completed.stderr


@pytest.mark.perf_smoke
def test_cli_bench_quick_writes_a_report(tmp_path):
    output = tmp_path / "bench.json"
    completed = run_cli("bench", "--quick", "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    report = json.loads(output.read_text())
    assert report["mode"] == "quick"
    assert "train_step" in report["results"]
