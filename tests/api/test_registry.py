"""Tests for the policy registry: registration contract, building and running.

The heavy guarantee here is the satellite one: *every* registered policy must
build from a CI-scale dataset and complete a 50-arrival simulation run.
"""

import numpy as np
import pytest

from repro.api import available_policies, build_policy, policy_entry, register_policy
from repro.api.registry import _REGISTRY
from repro.baselines import RandomPolicy
from repro.core import TaskArrangementFramework
from repro.core.interfaces import ArrangementPolicy
from repro.datasets import generate_crowdspring
from repro.eval import RunnerConfig, SimulationRunner

#: Kwargs that keep the DDQN variants CI-sized.
TINY_DDQN = {"hidden_dim": 16, "num_heads": 2, "batch_size": 8, "train_interval": 4, "seed": 0}


@pytest.fixture(scope="module")
def dataset():
    return generate_crowdspring(scale=0.03, num_months=2, seed=1)


class TestRegistrationContract:
    def test_all_expected_policies_are_registered(self):
        names = set(available_policies())
        assert {
            "random",
            "taskrec",
            "greedy-cosine",
            "greedy-nn",
            "linucb",
            "ddqn",
            "ddqn-worker",
            "ddqn-requester",
        } <= names

    def test_duplicate_registration_raises(self):
        def _again(schema, **kwargs):  # pragma: no cover - never stored
            return RandomPolicy()

        original = policy_entry("random").builder
        with pytest.raises(ValueError, match="already registered"):
            register_policy("random")(_again)
        # The original registration must be untouched.
        assert policy_entry("random").builder is original

    def test_malformed_names_are_rejected(self):
        for bad in ("", "Random", "has space", "-leading"):
            with pytest.raises(ValueError, match="slug"):
                register_policy(bad)(lambda schema, **kwargs: RandomPolicy())
            assert bad not in _REGISTRY

    def test_unknown_policy_lookup_lists_known_names(self, dataset):
        with pytest.raises(KeyError, match="registered policies"):
            build_policy("no-such-policy", dataset)

    def test_entries_carry_descriptions(self):
        for entry in available_policies().values():
            assert entry.description


class TestBuildPolicy:
    def test_built_policies_are_stamped_with_their_registry_name(self, dataset):
        policy = build_policy("linucb", dataset)
        assert policy.registry_name == "linucb"
        assert policy.name == "LinUCB"

    def test_build_accepts_a_bare_schema(self, dataset):
        policy = build_policy("ddqn-worker", dataset.schema, **TINY_DDQN)
        assert isinstance(policy, TaskArrangementFramework)
        assert policy.agent_r is None

    def test_build_rejects_non_datasets(self):
        with pytest.raises(TypeError, match="CrowdDataset"):
            build_policy("random", object())

    def test_ddqn_variants_configure_the_mdp_flags(self, dataset):
        worker = build_policy("ddqn-worker", dataset, **TINY_DDQN)
        requester = build_policy("ddqn-requester", dataset, **TINY_DDQN)
        balanced = build_policy("ddqn", dataset, worker_weight=0.5, **TINY_DDQN)
        assert worker.agent_r is None
        assert requester.agent_w is None
        assert balanced.agent_w is not None and balanced.agent_r is not None
        assert balanced.config.worker_weight == 0.5

    def test_unknown_ddqn_kwargs_raise(self, dataset):
        with pytest.raises(ValueError, match="invalid DDQN configuration"):
            build_policy("ddqn-worker", dataset, no_such_option=1)


class TestEveryPolicyRuns:
    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("random", {"seed": 0}),
            ("taskrec", {"seed": 0}),
            ("greedy-cosine", {"objective": "worker"}),
            ("greedy-nn", {"objective": "worker", "seed": 0}),
            ("linucb", {"objective": "worker"}),
            ("ddqn", dict(TINY_DDQN, worker_weight=0.25)),
            ("ddqn-worker", TINY_DDQN),
            ("ddqn-requester", TINY_DDQN),
        ],
    )
    def test_registered_policy_completes_a_50_arrival_run(self, dataset, name, kwargs):
        policy = build_policy(name, dataset, **kwargs)
        assert isinstance(policy, ArrangementPolicy)
        runner = SimulationRunner(dataset, RunnerConfig(seed=0, max_arrivals=50))
        result = runner.run(policy)
        assert result.policy_name == policy.name
        assert result.arrivals > 0
        assert np.isfinite(result.cr.final)
