"""Tests for the declarative spec layer: JSON round-trips and execution."""

import json

import pytest

from repro.api import DatasetSpec, ExperimentSpec, PolicySpec, run_spec
from repro.eval import RunnerConfig
from repro.eval.experiments import (
    ExperimentScale,
    balance_spec,
    requester_benefit_spec,
    worker_benefit_spec,
)
from repro.eval.metrics import EvaluationResult

TINY_SCALE = ExperimentScale(
    scale=0.03, num_months=2, hidden_dim=16, num_heads=2, batch_size=8,
    train_interval=4, seed=1, max_arrivals=40,
)


def tiny_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="tiny",
        dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
        runner=RunnerConfig(seed=0, max_arrivals=30),
        policies=[
            PolicySpec("random", {"seed": 0}),
            PolicySpec("greedy-cosine", {"objective": "worker"}),
        ],
    )


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_json_round_trip_is_lossless(self):
        spec = worker_benefit_spec(TINY_SCALE)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.to_dict() == spec.to_dict()
        assert restored.runner == spec.runner
        assert [p.policy for p in restored.policies] == [p.policy for p in spec.policies]

    def test_file_round_trip(self, tmp_path):
        spec = requester_benefit_spec(TINY_SCALE)
        path = spec.save(tmp_path / "spec.json")
        assert json.loads(path.read_text())["name"] == "requester-benefit"
        assert ExperimentSpec.load(path).to_dict() == spec.to_dict()

    def test_balance_spec_labels_each_weight(self):
        spec = balance_spec((0.0, 0.5, 1.0), TINY_SCALE)
        weights = [entry.kwargs["worker_weight"] for entry in spec.policies]
        assert weights == [0.0, 0.5, 1.0]
        assert all(entry.policy == "ddqn" for entry in spec.policies)
        # The repeated ddqn entries must carry distinct labels, or the spec
        # could not round-trip through JSON (duplicate names are rejected).
        assert [entry.label for entry in spec.policies] == [
            "DDQN(w=0)", "DDQN(w=0.5)", "DDQN(w=1)",
        ]
        assert ExperimentSpec.from_json(spec.to_json()).to_dict() == spec.to_dict()


class TestValidation:
    def test_unknown_top_level_keys_raise(self):
        with pytest.raises(ValueError, match="unknown experiment spec keys"):
            ExperimentSpec.from_dict({"name": "x", "nope": 1})

    def test_unknown_runner_keys_raise(self):
        with pytest.raises(ValueError, match="unknown runner keys"):
            ExperimentSpec.from_dict({"runner": {"warp_speed": 9}})

    def test_unknown_dataset_keys_raise(self):
        with pytest.raises(ValueError, match="unknown dataset spec keys"):
            ExperimentSpec.from_dict({"dataset": {"scale": 0.1, "volume": 2}})

    def test_policy_spec_requires_a_name(self):
        with pytest.raises(ValueError, match="policy"):
            ExperimentSpec.from_dict({"policies": [{"kwargs": {}}]})

    def test_invalid_runner_values_surface_runnerconfig_errors(self):
        with pytest.raises(ValueError, match="max_arrivals"):
            ExperimentSpec.from_dict({"runner": {"max_arrivals": -5}})

    def test_empty_spec_refuses_to_run(self):
        with pytest.raises(ValueError, match="no policies"):
            run_spec(ExperimentSpec(name="empty"))

    def test_duplicate_policy_names_are_rejected_at_parse_time(self):
        data = tiny_spec().to_dict()
        data["policies"] = [{"policy": "random"}, {"policy": "random"}]
        with pytest.raises(ValueError, match="more than once"):
            ExperimentSpec.from_dict(data)

    def test_duplicate_labels_are_rejected_at_parse_time(self):
        data = tiny_spec().to_dict()
        data["policies"] = [
            {"policy": "random", "label": "twin"},
            {"policy": "linucb", "label": "twin"},
        ]
        with pytest.raises(ValueError, match="more than once"):
            ExperimentSpec.from_dict(data)

    def test_label_matching_another_policy_name_still_parses(self):
        # A label colliding with a *different* entry's registry slug is not a
        # result-dict collision (unlabeled entries key on display names).
        data = tiny_spec().to_dict()
        data["policies"] = [
            {"policy": "linucb", "label": "random"},
            {"policy": "random"},
        ]
        spec = ExperimentSpec.from_dict(data)
        assert len(spec.policies) == 2

    def test_distinct_labels_make_repeated_policies_parseable(self):
        data = tiny_spec().to_dict()
        data["policies"] = [
            {"policy": "random", "kwargs": {"seed": 0}, "label": "random-a"},
            {"policy": "random", "kwargs": {"seed": 1}, "label": "random-b"},
        ]
        spec = ExperimentSpec.from_dict(data)
        assert [entry.label for entry in spec.policies] == ["random-a", "random-b"]


class TestRunSpec:
    def test_run_spec_returns_results_keyed_by_display_name(self):
        results = run_spec(tiny_spec())
        assert list(results) == ["Random", "Greedy CS"]
        for result in results.values():
            assert isinstance(result, EvaluationResult)
            assert result.arrivals > 0

    def test_labels_override_result_keys_and_allow_duplicates(self):
        spec = tiny_spec()
        spec.policies = [
            PolicySpec("random", {"seed": 0}, label="random-a"),
            PolicySpec("random", {"seed": 1}, label="random-b"),
        ]
        results = run_spec(spec)
        assert list(results) == ["random-a", "random-b"]

    def test_duplicate_labels_raise(self):
        spec = tiny_spec()
        spec.policies = [PolicySpec("random", {"seed": 0}), PolicySpec("random", {"seed": 1})]
        with pytest.raises(ValueError, match="duplicate result label"):
            run_spec(spec)

    def test_checkpoint_slug_collisions_are_rejected(self, tmp_path):
        # Distinct labels that sanitize to the same filename must not
        # silently overwrite each other's checkpoints.
        spec = tiny_spec()
        spec.policies = [
            PolicySpec("random", {"seed": 0}, label="a b"),
            PolicySpec("greedy-cosine", {"objective": "worker"}, label="a-b"),
        ]
        with pytest.raises(ValueError, match="both checkpoint"):
            run_spec(spec, checkpoint_dir=tmp_path)

    def test_dataset_override_skips_generation(self):
        spec = tiny_spec()
        dataset = spec.dataset.build()
        results = run_spec(spec, dataset=dataset)
        assert set(results) == {"Random", "Greedy CS"}
