"""Tests for the sweep layer: specs, expansion, execution, resume, aggregation.

The runner-level tests use cheap policies (random / greedy-cosine) on tiny
traces so the whole grid executes in seconds; the heavyweight DDQN cells are
covered by the CLI smoke test and the determinism suite.
"""

import json

import pytest

from repro.api import (
    DatasetSpec,
    ExperimentSpec,
    PolicySpec,
    SweepAxis,
    SweepRunner,
    SweepSpec,
    aggregate_cells,
    format_sweep_table,
    run_sweep,
)
from repro.eval import RunnerConfig
from repro.eval.experiments import ExperimentScale, balance_sweep_spec, density_sweep_spec


def cheap_base(max_arrivals: int = 25) -> ExperimentSpec:
    return ExperimentSpec(
        name="cheap",
        dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
        runner=RunnerConfig(seed=0, max_arrivals=max_arrivals),
        policies=[
            PolicySpec("random", {"seed": 0}),
            PolicySpec("greedy-cosine", {"objective": "worker"}),
        ],
    )


def cheap_sweep(seeds=(1, 2), policy_seeds=(0, 3)) -> SweepSpec:
    return SweepSpec(
        name="cheap-sweep",
        base=cheap_base(),
        axes=[
            SweepAxis(target="policy", key="seed", values=list(policy_seeds), policy="random"),
            SweepAxis(target="dataset", key="seed", values=list(seeds)),
        ],
        replicate_axis="dataset.seed",
    )


class TestAxisValidation:
    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="axis target"):
            SweepAxis(target="platform", key="seed", values=[1])

    def test_empty_values_raise(self):
        with pytest.raises(ValueError, match="non-empty 'values'"):
            SweepAxis(target="dataset", key="seed", values=[])

    def test_duplicate_values_raise(self):
        with pytest.raises(ValueError, match="duplicate values"):
            SweepAxis(target="dataset", key="seed", values=[1, 1])

    def test_unknown_dataset_field_raises(self):
        with pytest.raises(ValueError, match="unknown dataset field"):
            SweepAxis(target="dataset", key="volume", values=[1])

    def test_unknown_runner_field_raises(self):
        with pytest.raises(ValueError, match="unknown runner field"):
            SweepAxis(target="runner", key="warp", values=[1])

    def test_policy_filter_only_for_policy_target(self):
        with pytest.raises(ValueError, match="only applies"):
            SweepAxis(target="runner", key="seed", values=[1], policy="ddqn")

    def test_policy_axis_matching_no_entry_fails_at_expand(self):
        spec = SweepSpec(
            name="bad",
            base=cheap_base(),
            axes=[SweepAxis(target="policy", key="seed", values=[1], policy="linucb")],
        )
        with pytest.raises(ValueError, match="matches no policy"):
            spec.expand()

    def test_invalid_runner_value_fails_at_expand(self):
        spec = SweepSpec(
            name="bad",
            base=cheap_base(),
            axes=[SweepAxis(target="runner", key="max_arrivals", values=[-3])],
        )
        with pytest.raises(ValueError, match="max_arrivals"):
            spec.expand()


class TestSweepSpec:
    def test_json_round_trip_is_lossless(self):
        spec = cheap_sweep()
        restored = SweepSpec.from_json(spec.to_json())
        assert restored.to_dict() == spec.to_dict()
        assert restored.replicate_axis == "dataset.seed"

    def test_file_round_trip(self, tmp_path):
        spec = balance_sweep_spec(weights=(0.0, 1.0), seeds=(7, 8))
        path = spec.save(tmp_path / "sweep.json")
        assert SweepSpec.load(path).to_dict() == spec.to_dict()

    def test_unknown_keys_raise(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"name": "x", "grid": []})

    def test_duplicate_axes_raise(self):
        with pytest.raises(ValueError, match="duplicate sweep axes"):
            SweepSpec(
                name="dup",
                base=cheap_base(),
                axes=[
                    SweepAxis(target="dataset", key="seed", values=[1]),
                    SweepAxis(target="dataset", key="seed", values=[2]),
                ],
            )

    def test_replicate_axis_must_name_an_axis(self):
        with pytest.raises(ValueError, match="replicate_axis"):
            SweepSpec(name="x", base=cheap_base(), axes=[], replicate_axis="dataset.seed")

    def test_expansion_is_the_cartesian_product(self):
        cells = cheap_sweep(seeds=(1, 2), policy_seeds=(0, 3)).expand()
        assert len(cells) == 4
        assert [cell.cell_id for cell in cells] == [
            "random.seed=0,dataset.seed=1",
            "random.seed=0,dataset.seed=2",
            "random.seed=3,dataset.seed=1",
            "random.seed=3,dataset.seed=2",
        ]
        # Replicates of one grid point share a group id.
        assert cells[0].group_id == cells[1].group_id == "random.seed=0"
        assert cells[2].group_id == cells[3].group_id == "random.seed=3"
        # Axis values actually land in the concrete specs.
        assert cells[1].spec.dataset.seed == 2
        assert cells[2].spec.policies[0].kwargs["seed"] == 3
        # The untouched policy keeps its kwargs.
        assert cells[2].spec.policies[1].kwargs == {"objective": "worker"}

    def test_expansion_without_axes_is_a_single_cell(self):
        spec = SweepSpec(name="solo", base=cheap_base())
        cells = spec.expand()
        assert [cell.cell_id for cell in cells] == ["base"]
        assert cells[0].group_id == "all"

    def test_expansion_does_not_mutate_the_base(self):
        spec = cheap_sweep()
        spec.expand()
        assert spec.base.dataset.seed == 1
        assert spec.base.policies[0].kwargs == {"seed": 0}

    def test_bundled_builders_expand(self):
        scale = ExperimentScale(scale=0.03, num_months=2, hidden_dim=16, num_heads=2)
        assert len(balance_sweep_spec(weights=(0.0, 0.5), seeds=(7,), scale=scale).expand()) == 2
        assert len(density_sweep_spec(scales=(0.03,), seeds=(7, 8), scale=scale).expand()) == 2


class TestSweepRunner:
    def test_run_writes_cells_and_aggregate(self, tmp_path):
        spec = cheap_sweep()
        seen: list[str] = []
        aggregate = run_sweep(
            spec, tmp_path / "sweep", progress=lambda cell, done, total: seen.append(cell)
        )
        assert len(seen) == 4
        assert sorted(aggregate["cells"]) == sorted(seen)
        cells_dir = tmp_path / "sweep" / "cells"
        assert len(list(cells_dir.glob("*.json"))) == 4
        document = json.loads((cells_dir / f"{seen[0]}.json").read_text())
        assert set(document["results"]) == {"Random", "Greedy CS"}
        results = json.loads((tmp_path / "sweep" / "results.json").read_text())
        assert results == aggregate

    def test_aggregate_reports_mean_std_across_replicates(self, tmp_path):
        spec = cheap_sweep()
        aggregate = run_sweep(spec, tmp_path / "sweep")
        assert set(aggregate["groups"]) == {"random.seed=0", "random.seed=3"}
        for group in aggregate["groups"].values():
            assert group["replicates"] == 2
            for measures in group["policies"].values():
                stats = measures["CR"]
                assert len(stats["values"]) == 2
                assert stats["mean"] == pytest.approx(sum(stats["values"]) / 2)
                assert stats["std"] >= 0.0
        # greedy-cosine ignores the random-policy axis: its per-seed results
        # must be identical across the two groups.
        groups = aggregate["groups"]
        assert (
            groups["random.seed=0"]["policies"]["Greedy CS"]["CR"]["values"]
            == groups["random.seed=3"]["policies"]["Greedy CS"]["CR"]["values"]
        )

    def test_resume_skips_finished_cells(self, tmp_path):
        spec = cheap_sweep()
        runner = SweepRunner(spec, tmp_path / "sweep")
        first = runner.run()
        assert runner.status().complete

        # Drop one cell: only that one is pending, and a fresh runner on the
        # same directory re-runs exactly it.
        victim = first["cells"][2]
        (runner.cells_directory / f"{victim}.json").unlink()
        status = SweepRunner(spec, tmp_path / "sweep").status()
        assert status.pending == [victim]
        executed: list[str] = []
        second = SweepRunner(spec, tmp_path / "sweep").run(
            progress=lambda cell, done, total: executed.append(cell)
        )
        assert executed == [victim]
        assert second == first

    def test_mismatched_spec_in_directory_is_refused(self, tmp_path):
        SweepRunner(cheap_sweep(), tmp_path / "sweep").prepare()
        other = cheap_sweep(seeds=(5, 6))
        with pytest.raises(ValueError, match="different sweep"):
            SweepRunner(other, tmp_path / "sweep").prepare()

    def test_aggregate_refuses_missing_cells(self):
        spec = cheap_sweep()
        with pytest.raises(ValueError, match="missing"):
            aggregate_cells(spec, {})

    def test_invalid_worker_count_raises(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(cheap_sweep(), tmp_path, workers=0)

    def test_format_sweep_table_renders_mean_std(self, tmp_path):
        aggregate = run_sweep(cheap_sweep(), tmp_path / "sweep")
        table = format_sweep_table(aggregate)
        assert "random.seed=0" in table
        assert "±" in table
        assert "Greedy CS" in table


class TestSweepDatasetCache:
    def test_run_populates_one_trace_per_distinct_dataset_spec(self, tmp_path):
        from repro.datasets import trace_cache_name

        # cheap_sweep grids dataset seeds (1, 2) × policy seeds: the four
        # cells share two distinct datasets, so exactly two traces are cached.
        spec = cheap_sweep()
        run_sweep(spec, tmp_path / "sweep")
        cache_dir = tmp_path / "sweep" / "datasets"
        assert sorted(p.name for p in cache_dir.glob("*.npz")) == sorted(
            [trace_cache_name(0.03, 2, 1), trace_cache_name(0.03, 2, 2)]
        )

    def test_dataset_axis_caches_each_seed(self, tmp_path):
        from repro.datasets import trace_cache_name

        spec = SweepSpec(
            name="dataset-axis",
            base=cheap_base(max_arrivals=10),
            axes=[SweepAxis(target="dataset", key="seed", values=[1, 2])],
        )
        run_sweep(spec, tmp_path / "sweep")
        cache_dir = tmp_path / "sweep" / "datasets"
        assert sorted(p.name for p in cache_dir.glob("*.npz")) == sorted(
            [trace_cache_name(0.03, 2, 1), trace_cache_name(0.03, 2, 2)]
        )

    def test_cached_sweep_matches_uncached_cells(self, tmp_path):
        """A sweep reading the cache aggregates identically to direct runs."""
        from repro.api import run_spec as direct_run_spec

        spec = cheap_sweep()
        aggregate = run_sweep(spec, tmp_path / "sweep")
        cell = spec.expand()[0]
        direct = direct_run_spec(cell.spec)
        document = json.loads(
            (tmp_path / "sweep" / "cells" / f"{cell.cell_id}.json").read_text()
        )
        for label, result in direct.items():
            row = document["results"][label]
            assert row["CR"] == result.cr.final
            assert row["arrivals"] == result.arrivals
        assert aggregate["cells"]


class TestVectorizedSweep:
    """``vectorize``: seed-replicate cells fused into lockstep runs."""

    def ddqn_sweep(self) -> SweepSpec:
        base = ExperimentSpec(
            name="vec-cell",
            dataset=DatasetSpec(scale=0.03, num_months=2, seed=1),
            runner=RunnerConfig(seed=0, max_arrivals=12, max_warmup_observations=10),
            policies=[
                PolicySpec("random", {"seed": 0}),
                PolicySpec(
                    "ddqn-worker",
                    {
                        "hidden_dim": 8,
                        "num_heads": 2,
                        "batch_size": 4,
                        "seed": 0,
                        "max_tasks": 12,
                    },
                ),
            ],
        )
        return SweepSpec(
            name="vec-sweep",
            base=base,
            axes=[SweepAxis(target="dataset", key="seed", values=[1, 2, 3])],
            replicate_axis="dataset.seed",
        )

    def test_vectorized_sweep_matches_serial_sweep(self, tmp_path):
        serial = run_sweep(self.ddqn_sweep(), tmp_path / "serial")
        vectorized = run_sweep(self.ddqn_sweep(), tmp_path / "vector", vectorize=3)
        # Aggregates exclude timing fields, so this is exact float equality
        # of every measure of every cell group.
        assert vectorized == serial

    def test_vectorized_sweep_documents_match_cellwise(self, tmp_path):
        run_sweep(self.ddqn_sweep(), tmp_path / "serial")
        run_sweep(self.ddqn_sweep(), tmp_path / "vector", vectorize=2)
        for cell in self.ddqn_sweep().expand():
            serial_doc = json.loads(
                (tmp_path / "serial" / "cells" / f"{cell.cell_id}.json").read_text()
            )
            vector_doc = json.loads(
                (tmp_path / "vector" / "cells" / f"{cell.cell_id}.json").read_text()
            )
            for label, row in serial_doc["results"].items():
                for key, value in row.items():
                    if key.startswith("mean_"):
                        continue  # timing noise
                    assert vector_doc["results"][label][key] == value, (label, key)

    def test_vectorized_sweep_runs_on_a_worker_pool(self, tmp_path):
        serial = run_sweep(self.ddqn_sweep(), tmp_path / "serial")
        pooled = run_sweep(self.ddqn_sweep(), tmp_path / "pool", workers=2, vectorize=2)
        assert pooled == serial

    def test_invalid_vectorize_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="vectorize"):
            SweepRunner(self.ddqn_sweep(), tmp_path / "bad", vectorize=0)
