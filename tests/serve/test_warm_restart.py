"""Warm restart: SIGTERM a serving process, restart it, end state identical.

The satellite acceptance path, run through the real CLI: boot
``python -m repro serve``, ingest part of each tenant's trace through the
load generator, ``SIGTERM`` the process (graceful drain — loops finish,
periodic checkpoints stand), restart it against the same state directory and
feed the remainder.  The final per-tenant run-state checkpoints must be
bit-identical (modulo wall-clock timing accumulators) to an uninterrupted
server fed the same events in one life.

Persistence is schedule-aligned: the drain writes no extra checkpoint, the
restarted server reports each tenant's restored trace offset, and the load
generator re-feeds the tail past it — at-least-once delivery with exact
replay, so the resumed trajectory merges back onto the uninterrupted one.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import ServeSpec, run_loadgen

from tests.serve.conftest import CI_SPEC_PATH, assert_state_dirs_equal

REPO_ROOT = Path(__file__).resolve().parents[2]


def launch_server(state_dir, cache_dir):
    """Start the serve CLI; returns (process, port) once it announces."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(CI_SPEC_PATH),
            "--state-dir",
            str(state_dir),
            "--cache-dir",
            str(cache_dir),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    if not line:
        process.kill()
        raise RuntimeError(f"server died before announcing: {process.stderr.read()}")
    announce = json.loads(line)["serving"]
    return process, announce


def wait_for_exit(process, timeout=120):
    """Collect the shutdown line and exit code of a draining server."""
    try:
        stdout, stderr = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    assert process.returncode == 0, stderr
    shutdown_lines = [line for line in stdout.splitlines() if '"shutdown"' in line]
    assert shutdown_lines, f"no shutdown summary printed:\n{stdout}\n{stderr}"
    return json.loads(shutdown_lines[-1])["shutdown"]


def test_sigterm_restart_matches_uninterrupted_run(tmp_path, cache_dir):
    spec = ServeSpec.load(CI_SPEC_PATH)
    uncut_dir = tmp_path / "uncut"
    cut_dir = tmp_path / "cut"

    # Uninterrupted baseline: one server life, full traces, drained clean.
    process, announce = launch_server(uncut_dir, cache_dir)
    run_loadgen(
        spec, port=announce["port"], dataset_cache_dir=cache_dir, shutdown=True
    )
    baseline_summary = wait_for_exit(process)

    # Interrupted run, life 1: part of the trace, then SIGTERM.
    process, announce = launch_server(cut_dir, cache_dir)
    first = run_loadgen(
        spec, port=announce["port"], dataset_cache_dir=cache_dir, max_events=110
    )
    assert all(row["events_sent"] == 110 for row in first["tenants"].values())
    process.send_signal(signal.SIGTERM)
    interrupted_summary = wait_for_exit(process)
    for name, entry in interrupted_summary.items():
        assert entry["error"] is None
        # The drain consumed everything the load generator fed.
        assert entry["events_consumed"] == 110, name

    # Life 2: resume from the periodic checkpoints and feed the remainder.
    process, announce = launch_server(cut_dir, cache_dir)
    second = run_loadgen(
        spec, port=announce["port"], dataset_cache_dir=cache_dir, shutdown=True
    )
    resumed_summary = wait_for_exit(process)

    for name in ("alpha", "beta"):
        offset = second["tenants"][name]["offset"]
        # Schedule-aligned persistence: the restart resumes from the last
        # periodic checkpoint (strictly before the SIGTERM point, no
        # drain-time save) and the load generator re-fed the tail.
        assert 0 < offset < 110, (name, offset)
        assert (
            resumed_summary[name]["events_consumed"]
            == baseline_summary[name]["events_consumed"]
        )
        # Result rows match exactly, minus the wall-clock timing columns.
        resumed_row = {
            k: v for k, v in resumed_summary[name]["result"].items() if not k.endswith("_s")
        }
        baseline_row = {
            k: v for k, v in baseline_summary[name]["result"].items() if not k.endswith("_s")
        }
        assert resumed_row == baseline_row

    assert_state_dirs_equal(uncut_dir, cut_dir)


def test_restarted_server_reports_restored_offsets(tmp_path, cache_dir):
    """Status after a restart shows the checkpointed trace offsets."""
    spec = ServeSpec.load(CI_SPEC_PATH)
    state_dir = tmp_path / "state"

    process, announce = launch_server(state_dir, cache_dir)
    run_loadgen(spec, port=announce["port"], dataset_cache_dir=cache_dir, max_events=80)
    process.send_signal(signal.SIGTERM)
    wait_for_exit(process)
    checkpoints = sorted(p.name for p in state_dir.glob("*.runstate.npz"))
    assert checkpoints == ["alpha.runstate.npz", "beta.runstate.npz"]
    mtimes = {p.name: p.stat().st_mtime_ns for p in state_dir.glob("*.npz")}

    process, announce = launch_server(state_dir, cache_dir)
    try:
        report = run_loadgen(
            spec, port=announce["port"], dataset_cache_dir=cache_dir, max_events=0
        )
        for name in ("alpha", "beta"):
            tenant = report["server_status"]["tenants"][name]
            assert tenant["resumed_at_event"] > 0
            assert tenant["events_consumed"] == tenant["resumed_at_event"]
            assert report["tenants"][name]["offset"] == tenant["resumed_at_event"]
    finally:
        process.send_signal(signal.SIGTERM)
        wait_for_exit(process)
    # No events were fed this life, so no checkpoint was rewritten: the
    # drain performs no save of its own (schedule-aligned persistence).
    assert {p.name: p.stat().st_mtime_ns for p in state_dir.glob("*.npz")} == mtimes
