"""Wire codec unit tests: line framing and the event translation."""

import pytest

from repro.crowd.events import Event, EventType
from repro.serve import (
    ProtocolError,
    decode_line,
    encode_line,
    event_from_wire,
    event_to_wire,
)


class TestLineCodec:
    def test_encode_decode_round_trip(self):
        payload = {"op": "status", "n": 3, "nested": {"ok": True}}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == payload

    def test_decode_accepts_str(self):
        assert decode_line('{"op":"ping"}') == {"op": "ping"}

    def test_invalid_json_raises(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_line(b"{nope\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode_line(b"[1, 2]\n")


class TestEventWire:
    def test_event_round_trip(self):
        for kind in EventType:
            event = Event(timestamp=123.5, event_type=kind, subject_id=7)
            wire = event_to_wire("alpha", event)
            assert wire["op"] == "event"
            assert wire["tenant"] == "alpha"
            back = event_from_wire(wire)
            assert back.event_type is kind
            assert back.subject_id == 7
            assert back.timestamp == 123.5

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown event kind"):
            event_from_wire({"op": "event", "kind": "meteor", "subject_id": 1, "timestamp": 0})

    def test_missing_fields_raise(self):
        with pytest.raises(ProtocolError, match="subject_id"):
            event_from_wire({"op": "event", "kind": "worker_arrival"})
