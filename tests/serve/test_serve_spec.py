"""ServeSpec / TenantSpec parsing: round trips and loud rejections."""

import pytest

from repro.serve import ServeSpec
from repro.serve.spec import TenantSpec

from tests.serve.conftest import CI_SPEC_PATH


def tenant_dict(name="alpha", policy="random"):
    return {
        "name": name,
        "dataset": {"scale": 0.03, "num_months": 2, "seed": 1},
        "runner": {"seed": 0, "checkpoint_every": 25},
        "policy": {"policy": policy},
    }


def serve_dict(**overrides):
    data = {
        "name": "unit",
        "host": "127.0.0.1",
        "port": 0,
        "tenants": [tenant_dict()],
    }
    data.update(overrides)
    return data


class TestRoundTrip:
    def test_bundled_ci_spec_loads(self):
        spec = ServeSpec.load(CI_SPEC_PATH)
        assert spec.name == "serve-ci"
        assert spec.port == 0
        assert [tenant.name for tenant in spec.tenants] == ["alpha", "beta"]
        assert all(t.policy.policy == "ddqn-worker" for t in spec.tenants)
        assert all(t.runner.checkpoint_every == 25 for t in spec.tenants)

    def test_dict_round_trip(self):
        spec = ServeSpec.from_dict(serve_dict())
        clone = ServeSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_json_file_round_trip(self, tmp_path):
        spec = ServeSpec.from_dict(serve_dict())
        path = spec.save(tmp_path / "spec.json")
        assert ServeSpec.load(path).to_dict() == spec.to_dict()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ServeSpec.load(tmp_path / "nope.json")


class TestRejections:
    def test_unknown_serve_key_raises(self):
        with pytest.raises(ValueError, match="unknown serve spec keys"):
            ServeSpec.from_dict(serve_dict(replicas=3))

    def test_unknown_tenant_key_raises(self):
        bad = tenant_dict()
        bad["gpu"] = True
        with pytest.raises(ValueError, match="unknown tenant spec keys"):
            ServeSpec.from_dict(serve_dict(tenants=[bad]))

    def test_unknown_runner_key_raises(self):
        bad = tenant_dict()
        bad["runner"] = {"warp_speed": 9}
        with pytest.raises(ValueError, match="runner"):
            ServeSpec.from_dict(serve_dict(tenants=[bad]))

    def test_duplicate_tenant_names_raise(self):
        with pytest.raises(ValueError, match="twice"):
            ServeSpec.from_dict(serve_dict(tenants=[tenant_dict(), tenant_dict()]))

    def test_no_tenants_raises(self):
        with pytest.raises(ValueError, match="no tenants"):
            ServeSpec.from_dict(serve_dict(tenants=[]))

    def test_bad_tenant_slug_raises(self):
        for name in ("Alpha", "a/b", "", "-leading", "sp ace"):
            with pytest.raises(ValueError, match="slug"):
                TenantSpec.from_dict(tenant_dict(name=name))

    def test_missing_policy_section_raises(self):
        bad = tenant_dict()
        del bad["policy"]
        with pytest.raises(ValueError, match="policy"):
            TenantSpec.from_dict(bad)

    def test_unregistered_policy_fails_before_dataset_build(self):
        with pytest.raises(KeyError, match="no-such-policy"):
            ServeSpec.from_dict(serve_dict(tenants=[tenant_dict(policy="no-such-policy")]))

    def test_out_of_range_port_raises(self):
        with pytest.raises(ValueError, match="port"):
            ServeSpec.from_dict(serve_dict(port=70000))
