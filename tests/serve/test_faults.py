"""Fault tolerance: deterministic injection, supervision, hardening, chaos.

Four layers of coverage:

* **FaultPlan unit tests** — deterministic scheduling (``after``/``every``/
  ``times``/``probability``), scoping, JSON round trips, loud rejection of
  unknown sites/keys.
* **Offloader error propagation** — a failed checkpoint write reaches the
  ``on_result`` callback promptly (before any drain), the serving layer's
  prompt-degradation contract.
* **Protocol hardening over real TCP** — oversized frames, garbage JSON and
  mid-frame disconnects leave the server serving; per-request deadlines and
  queue-depth backpressure answer their structured codes; ``seq`` delivery
  is idempotent (duplicate acks, ``sequence_gap`` resync).
* **Chaos integration** — the bundled two-tenant CI spec replayed under a
  fault plan that crashes one tenant (supervised restart from checkpoint)
  and fails the other's checkpoint write (degrade + recover).  The faulted
  run must converge on the fault-free baseline: checkpoints bit-identical,
  the non-crashed sibling's decision stream untouched, every fault/health/
  supervisor record in the event logs and ingestable into the obs store.
"""

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.obs.ingest import ingest_serve_events
from repro.obs.store import MetricsStore
from repro.serve import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    LoadgenError,
    ProtocolLimits,
    Resilience,
    ServeClient,
    ServeSpec,
    SupervisorSpec,
    error_response,
    event_to_wire,
    run_loadgen,
)
from repro.serve.offload import CheckpointOffloader
from repro.serve.server import ArrangementServer

from tests.serve.conftest import (
    CI_SPEC_PATH,
    FrontendThread,
    ServerThread,
    assert_state_dirs_equal,
)

# --------------------------------------------------------------------- #
# FaultPlan unit tests
# --------------------------------------------------------------------- #
def test_fault_spec_schedule_after_every_times():
    plan = FaultPlan([FaultSpec(site="tenant_loop", after=3, every=2, times=2)])
    fired = [plan.fire("tenant_loop") is not None for _ in range(10)]
    # Visits are 1-based: eligible at 3, 5, 7, ... but capped at two firings.
    assert fired == [False, False, True, False, True, False, False, False, False, False]


def test_fault_plan_scoping_ticks_only_matching_visits():
    plan = FaultPlan([FaultSpec(site="conn_drop", tenant="beta", op="event", after=2)])
    assert plan.fire("conn_drop", tenant="alpha", op="event") is None  # tenant mismatch
    assert plan.fire("conn_drop", tenant="beta", op="status") is None  # op mismatch
    assert plan.fire("tenant_loop", tenant="beta", op="event") is None  # site mismatch
    # None of the above ticked the counter; these two are visits 1 and 2.
    assert plan.fire("conn_drop", tenant="beta", op="event") is None
    event = plan.fire("conn_drop", tenant="beta", op="event")
    assert event is not None and event.visit == 2 and event.firing == 1


def test_probability_firing_is_seed_deterministic():
    spec = {"site": "slow_frame", "probability": 0.5, "times": None}
    sequences = {}
    for seed in (3, 3, 9):
        plan = FaultPlan.from_dict({"seed": seed, "faults": [dict(spec)]})
        key = tuple(plan.fire("slow_frame") is not None for _ in range(64))
        sequences.setdefault(seed, []).append(key)
    assert sequences[3][0] == sequences[3][1]  # same seed, same schedule
    assert sequences[3][0] != sequences[9][0]  # different seed, different coins
    assert any(sequences[3][0]) and not all(sequences[3][0])


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan.from_dict(
        {
            "name": "rt",
            "seed": 5,
            "faults": [
                {"site": "checkpoint_write", "tenant": "beta", "after": 2, "times": 1},
                {"site": "slow_frame", "op": "event", "delay_ms": 12.5, "times": None},
            ],
        }
    )
    path = plan.save(tmp_path / "plan.json")
    loaded = FaultPlan.load(path)
    assert loaded.to_dict() == plan.to_dict()
    assert loaded.specs[1].delay_ms == 12.5 and loaded.specs[1].times is None


def test_fault_plan_rejects_unknown_sites_and_keys():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec(site="disk_on_fire")
    with pytest.raises(ValueError, match="unknown fault spec keys"):
        FaultSpec.from_dict({"site": "conn_drop", "when": "now"})
    with pytest.raises(ValueError, match="unknown fault plan keys"):
        FaultPlan.from_dict({"faults": [], "surprise": 1})
    with pytest.raises(ValueError, match="'after' must be >= 1"):
        FaultSpec(site="conn_drop", after=0)


def test_raise_if_raises_injected_fault_and_records():
    plan = FaultPlan([FaultSpec(site="tenant_loop", message="kaboom")])
    seen = []
    plan.on_fire = seen.append
    with pytest.raises(InjectedFault, match="kaboom"):
        plan.raise_if("tenant_loop", tenant="alpha")
    assert len(seen) == 1 and seen[0].to_record()["kind"] == "fault"
    assert plan.stats()["by_site"] == {"tenant_loop": 1}


def test_error_response_and_spec_knobs():
    payload = error_response("overloaded", "busy", retry_after_ms=50)
    assert payload == {"ok": False, "code": "overloaded", "error": "busy", "retry_after_ms": 50}
    with pytest.raises(ValueError, match="unknown limits keys"):
        ProtocolLimits.from_dict({"max_frame_byte": 1024})
    supervisor = SupervisorSpec(max_restarts=5, backoff_base_s=0.1, backoff_max_s=0.5)
    assert [supervisor.backoff_s(n) for n in range(4)] == [0.1, 0.2, 0.4, 0.5]


# --------------------------------------------------------------------- #
# Offloader: prompt error propagation
# --------------------------------------------------------------------- #
def test_offloader_reports_write_failure_promptly(tmp_path):
    import threading

    results = []
    reported = threading.Event()

    def on_result(error):
        results.append(error)
        reported.set()

    blocker = tmp_path / "not-a-dir"
    blocker.write_text("a file where a directory must go")
    offloader = CheckpointOffloader(on_result=on_result)
    try:
        offloader.write_many([({"weights": [1.0]}, blocker / "ckpt.npz")])
        # The callback fires from the worker the moment the batch fails —
        # no drain() needed (that is the promptness contract).
        assert reported.wait(timeout=10), "on_result never fired"
        assert isinstance(results[0], OSError)
        assert offloader.stats()["failures"] == 1
        offloader.drain()  # with on_result installed, drain does not re-raise
    finally:
        offloader.close()


# --------------------------------------------------------------------- #
# Protocol hardening over real TCP
# --------------------------------------------------------------------- #
def _solo_spec(**limits) -> ServeSpec:
    """One cheap random-policy tenant (alpha's cached dataset) + limits."""
    return ServeSpec.from_dict(
        {
            "name": "harden",
            "host": "127.0.0.1",
            "port": 0,
            "limits": limits,
            "tenants": [
                {
                    "name": "solo",
                    "dataset": {"scale": 0.03, "num_months": 2, "seed": 1},
                    "runner": {"seed": 0, "checkpoint_every": 25},
                    "policy": {"policy": "random"},
                }
            ],
        }
    )


def _solo_trace(cache_dir):
    spec = _solo_spec()
    dataset = spec.tenants[0].dataset.build(cache_dir=cache_dir)
    _, online = dataset.trace.split_warmup(dataset.warmup_end)
    return online.events


def _drain(thread: ServerThread) -> None:
    try:
        with ServeClient(*thread.address) as client:
            client.request({"op": "shutdown"})
    except OSError:
        pass
    thread.join()


def test_oversized_frame_answers_without_killing_connection(cache_dir):
    thread = ServerThread(_solo_spec(max_frame_bytes=512), dataset_cache_dir=cache_dir)
    try:
        with ServeClient(*thread.address) as client:
            client._sock.sendall(
                json.dumps({"op": "ping", "pad": "x" * 2048}).encode() + b"\n"
            )
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["code"] == "frame_too_large"
            assert response["max_frame_bytes"] == 512
            # The connection survives; the next (well-sized) request works.
            assert client.request({"op": "ping"}) == {"ok": True}
            # Garbage JSON gets the structured bad_request code.
            client._sock.sendall(b"{not json\n")
            garbage = json.loads(client._file.readline())
            assert garbage["code"] == "bad_request"
            assert "invalid JSON" in garbage["error"]
    finally:
        _drain(thread)


def test_mid_frame_disconnect_leaves_server_serving(cache_dir):
    thread = ServerThread(_solo_spec(), dataset_cache_dir=cache_dir)
    try:
        with socket.create_connection(thread.address, timeout=30) as sock:
            sock.sendall(b'{"op":"ping"')  # no newline: the frame never completes
        # EOF mid-frame is not an error; a fresh connection serves normally.
        with ServeClient(*thread.address) as client:
            assert client.request({"op": "ping"}) == {"ok": True}
    finally:
        _drain(thread)


def test_deadline_expiry_answers_deadline_exceeded(cache_dir):
    plan = FaultPlan.from_dict(
        {"faults": [{"site": "slow_frame", "op": "ping", "delay_ms": 800, "times": 1}]}
    )
    thread = ServerThread(
        _solo_spec(request_timeout_s=0.25), dataset_cache_dir=cache_dir, fault_plan=plan
    )
    try:
        with ServeClient(*thread.address) as client:
            slow = client.request({"op": "ping"})
            assert slow["ok"] is False
            assert slow["code"] == "deadline_exceeded"
            assert slow["injected"] is True
            assert client.request({"op": "ping"}) == {"ok": True}
    finally:
        _drain(thread)


def test_backpressure_answers_overloaded(cache_dir):
    spec = _solo_spec(max_queue_depth=4)
    events = _solo_trace(cache_dir)

    async def scenario():
        server = ArrangementServer(spec, dataset_cache_dir=cache_dir)
        server.boot()
        tenant = server.tenants["solo"]
        # Fill the queue directly (no pump scheduled), then knock once more.
        for event in events[:4]:
            tenant.stream.feed(event)
        response = await server._op_event(event_to_wire("solo", events[4]))
        assert response["ok"] is False
        assert response["code"] == "overloaded"
        assert response["retry_after_ms"] > 0
        # Drain the loop so the fed events are consumed and threads close.
        tenant.stream.close()
        await tenant.pump(server.batcher)
        assert tenant.error is None

    asyncio.run(scenario())


def test_seq_duplicates_and_gaps(cache_dir):
    thread = ServerThread(_solo_spec(), dataset_cache_dir=cache_dir)
    events = _solo_trace(cache_dir)
    try:
        with ServeClient(*thread.address) as client:
            ahead = client.request(event_to_wire("solo", events[5], seq=5))
            assert ahead["ok"] is False
            assert ahead["code"] == "sequence_gap"
            assert ahead["expected"] == 0
            first = client.request(event_to_wire("solo", events[0], seq=0))
            assert first["ok"], first
            again = client.request(event_to_wire("solo", events[0], seq=0))
            assert again["ok"] and again["duplicate"] is True
            unsequenced = client.request(event_to_wire("solo", events[1]))
            assert unsequenced["ok"] and "duplicate" not in unsequenced
    finally:
        _drain(thread)


# --------------------------------------------------------------------- #
# Chaos integration: crash + degrade under load, converge on the baseline
# --------------------------------------------------------------------- #
def _decision_projection(log_path):
    """The timing-free decision stream of one tenant's event log."""
    rows = []
    for line in log_path.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind", "decision") != "decision":
            continue
        rows.append(
            (
                record["seq"],
                record["events_consumed"],
                record["completed"],
                record["quality_gain"],
            )
        )
    return rows


def _records(log_path, kind):
    return [
        record
        for record in map(json.loads, log_path.read_text().splitlines())
        if record.get("kind") == kind
    ]


def test_chaos_run_converges_on_fault_free_baseline(tmp_path, cache_dir):
    spec = ServeSpec.load(CI_SPEC_PATH)
    base_state, base_logs = tmp_path / "base-state", tmp_path / "base-logs"
    fault_state, fault_logs = tmp_path / "fault-state", tmp_path / "fault-logs"

    # Fault-free baseline: full traces, drained clean.
    thread = ServerThread(
        spec, state_dir=base_state, dataset_cache_dir=cache_dir, event_log_dir=base_logs
    )
    baseline = run_loadgen(
        spec, port=thread.address[1], dataset_cache_dir=cache_dir, shutdown=True
    )
    thread.join()

    # Chaos run: alpha's replica loop crashes at its 30th ranking (after its
    # arrival-25 checkpoint landed) and beta's first checkpoint batch fails.
    plan = FaultPlan.from_dict(
        {
            "name": "chaos-test",
            "seed": 11,
            "faults": [
                {"site": "tenant_loop", "tenant": "alpha", "after": 30, "times": 1},
                {"site": "checkpoint_write", "tenant": "beta", "after": 1, "times": 1},
            ],
        }
    )
    thread = ServerThread(
        spec,
        state_dir=fault_state,
        dataset_cache_dir=cache_dir,
        event_log_dir=fault_logs,
        fault_plan=plan,
    )
    chaos = run_loadgen(
        spec,
        port=thread.address[1],
        dataset_cache_dir=cache_dir,
        shutdown=True,
        resilience=Resilience(retries=10, seed=5),
    )
    thread.join()

    # The resilient client absorbed the faults: zero lost events, at least
    # one retry (the supervision window) and one seq resync (the restart).
    for name, row in chaos["tenants"].items():
        assert row["errors"] == 0, (name, row)
    assert chaos["tenants"]["alpha"]["retries"] >= 1
    assert chaos["tenants"]["alpha"]["resyncs"] >= 1

    # Both runs drained every event; the crashed tenant recovered fully.
    for name, entry in chaos["shutdown"].items():
        assert entry["error"] is None, (name, entry)
        assert entry["health"] == "healthy", (name, entry)
        assert entry["events_consumed"] == baseline["shutdown"][name]["events_consumed"]
    assert chaos["shutdown"]["alpha"]["restarts"] == 1
    assert chaos["shutdown"]["beta"]["restarts"] == 0

    # Fault plan accounting reached the status surface.
    faults = chaos["server_status"]["faults"]
    assert faults["fired"] == 2
    assert faults["by_site"] == {"tenant_loop": 1, "checkpoint_write": 1}

    # Recovery is bit-exact: every checkpoint matches the baseline tree.
    assert_state_dirs_equal(base_state, fault_state)

    # Fault isolation: the sibling tenant's decision stream is untouched.
    assert _decision_projection(fault_logs / "beta.ndjson") == _decision_projection(
        base_logs / "beta.ndjson"
    )

    # The event logs tell the whole story: the injected faults, alpha's
    # failed → restarting → healthy arc, beta's degrade/recover arc and the
    # supervisor's actions.
    alpha_log, beta_log = fault_logs / "alpha.ndjson", fault_logs / "beta.ndjson"
    [alpha_fault] = _records(alpha_log, "fault")
    assert alpha_fault["site"] == "tenant_loop"
    [beta_fault] = _records(beta_log, "fault")
    assert beta_fault["site"] == "checkpoint_write"
    alpha_health = [(r["from_state"], r["to_state"]) for r in _records(alpha_log, "health")]
    assert ("healthy", "failed") in alpha_health
    assert ("restarting", "healthy") in alpha_health
    beta_health = _records(beta_log, "health")
    assert any(
        r["to_state"] == "degraded" and "checkpoint write failed" in r["reason"]
        for r in beta_health
    )
    assert any(
        r["to_state"] == "healthy" and "recovered" in r["reason"] for r in beta_health
    )
    actions = [r["action"] for r in _records(alpha_log, "supervisor")]
    assert actions == ["backoff", "restarted"]

    # And they ingest: decisions land in serve_events, everything else in
    # the faults table, queryable through the store.
    with MetricsStore() as store:
        summary = ingest_serve_events(store, fault_logs, label="chaos")
        assert summary["events"] > 0 and summary["faults"] >= 6
        _, kinds = store.query(
            "SELECT kind, COUNT(*) FROM faults GROUP BY kind ORDER BY kind"
        )
        assert [kind for kind, _ in kinds] == ["fault", "health", "supervisor"]
        _, sites = store.query(
            "SELECT site FROM faults WHERE kind = 'fault' ORDER BY site"
        )
        assert [site for (site,) in sites] == ["checkpoint_write", "tenant_loop"]


def test_trainer_poison_and_frame_faults_recover(tmp_path, cache_dir):
    """Trainer death + injected frame faults on one tenant: client rides through."""
    ci = ServeSpec.load(CI_SPEC_PATH)
    spec = ServeSpec.from_dict(
        {**ci.to_dict(), "name": "chaos-solo", "tenants": [ci.tenants[0].to_dict()]}
    )
    plan = FaultPlan.from_dict(
        {
            "name": "chaos-solo",
            "seed": 3,
            "faults": [
                {"site": "trainer_thread", "tenant": "alpha", "after": 60, "times": 1},
                {"site": "conn_drop", "tenant": "alpha", "op": "event", "after": 50, "times": 1},
                {"site": "malformed_frame", "op": "event", "after": 20, "times": 1},
                {"site": "oversized_frame", "op": "event", "after": 30, "times": 1},
            ],
        }
    )
    thread = ServerThread(
        spec, state_dir=tmp_path / "state", dataset_cache_dir=cache_dir, fault_plan=plan
    )
    report = run_loadgen(
        spec,
        port=thread.address[1],
        dataset_cache_dir=cache_dir,
        shutdown=True,
        resilience=Resilience(retries=10, seed=2),
    )
    thread.join()
    row = report["tenants"]["alpha"]
    assert row["errors"] == 0
    assert row["reconnects"] >= 1  # the dropped connection
    assert row["retries"] >= 2  # the injected frame errors + supervision window
    entry = report["shutdown"]["alpha"]
    assert entry["health"] == "healthy" and entry["error"] is None
    assert entry["restarts"] == 1  # the poisoned trainer killed the loop once
    assert report["server_status"]["faults"]["fired"] == 4


# --------------------------------------------------------------------- #
# Loadgen against a dead endpoint: clean error, nonzero exit
# --------------------------------------------------------------------- #
def test_loadgen_refused_connection_is_clean_error(capsys):
    from repro.serve import loadgen as loadgen_cli

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here any more

    code = loadgen_cli.main([str(CI_SPEC_PATH), "--port", str(port)])
    assert code == 1
    err = capsys.readouterr().err.strip()
    assert err.startswith("loadgen: cannot reach server at 127.0.0.1:")
    assert len(err.splitlines()) == 1  # one line, no traceback


def test_run_loadgen_raises_loadgen_error_on_unreachable_server(cache_dir):
    spec = ServeSpec.load(CI_SPEC_PATH)
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(LoadgenError, match="cannot reach server"):
        run_loadgen(spec, port=port, dataset_cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Shard-kill chaos: a worker process dies mid-replay and is supervised
# --------------------------------------------------------------------- #
def test_shard_kill_recovers_bit_exact(tmp_path, cache_dir):
    """SIGKILL one shard worker mid-replay; the deployment converges.

    The front-end's supervisor respawns the dead worker, which resumes its
    tenants from their last schedule-aligned checkpoints; the loadgen
    clients follow the tenant to the restarted shard's new ephemeral port
    (re-resolving through the front-end's ``routes``) and re-feed the tail
    through ``sequence_gap``.  The drained state must be bit-identical to a
    fault-free single-process baseline — the process-level version of the
    tenant-crash chaos test above.
    """
    spec = ServeSpec.load(CI_SPEC_PATH)
    # Beta's online trace holds 177 events; keep the window inside it.
    events = 150

    baseline_dir = tmp_path / "baseline"
    server = ServerThread(spec, state_dir=baseline_dir, resume=False, dataset_cache_dir=cache_dir)
    run_loadgen(
        spec, port=server.address[1], max_events=events,
        dataset_cache_dir=cache_dir, shutdown=True,
    )
    server.join()

    chaos_dir = tmp_path / "chaos"
    frontend = FrontendThread(
        spec, 2, state_dir=chaos_dir, resume=False, dataset_cache_dir=cache_dir
    )
    victim_pid = frontend.frontend.workers[0].pid
    victim_tenants = frontend.frontend.workers[0].tenants

    holder = {}

    def drive():
        holder["report"] = run_loadgen(
            spec,
            port=frontend.address[1],
            rate=80.0,  # pace the replay so the kill lands mid-window
            max_events=events,
            dataset_cache_dir=cache_dir,
            shutdown=True,
            resilience=Resilience(retries=14, seed=7),
        )

    loadgen_thread = threading.Thread(target=drive, daemon=True)
    loadgen_thread.start()
    time.sleep(0.8)  # ~64 events in: past the first checkpoint_every=25 save
    os.kill(victim_pid, signal.SIGKILL)
    loadgen_thread.join(timeout=300)
    assert not loadgen_thread.is_alive(), "loadgen did not finish after the shard kill"
    frontend.join()
    report = holder["report"]

    # Every tenant consumed its full window despite the kill...
    for name, entry in report["shutdown"].items():
        assert entry["events_consumed"] == events, name
        assert entry["error"] is None, name
        assert entry["health"] == "healthy", name
    # ...the killed shard's tenant rode through reconnect + tail re-feed...
    victim_rows = [report["tenants"][name] for name in victim_tenants]
    assert sum(row["reconnects"] for row in victim_rows) >= 1
    assert sum(row["retries"] for row in victim_rows) >= 1
    # ...the front-end recorded exactly one supervised worker restart...
    status = report["server_status"]
    assert status["shards"]["0"]["restarts"] == 1
    assert status["shards"]["1"]["restarts"] == 0
    # ...and the drained state matches the fault-free baseline bit for bit.
    assert_state_dirs_equal(baseline_dir, chaos_dir)
