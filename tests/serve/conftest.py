"""Shared fixtures for the serving-layer tests.

The serving tests all run against the bundled CI spec
(``examples/specs/serve_ci.json`` — two tiny ddqn-worker tenants) with a
session-scoped dataset cache, so every server boot after the first loads its
traces from disk instead of regenerating them.
"""

import asyncio
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.serve import ArrangementServer, ServeSpec
from repro.serve.shard import ShardedFrontend

REPO_ROOT = Path(__file__).resolve().parents[2]
CI_SPEC_PATH = REPO_ROOT / "examples" / "specs" / "serve_ci.json"

#: Wall-clock timing accumulators: the only run-state fields legitimately
#: different between an uninterrupted run and a warm-restarted one.
TIMING_JSON_KEYS = {"runner/decision_seconds", "runner/update_seconds"}
TIMING_ARRAY_KEYS = {"runner/retrain_seconds"}


@pytest.fixture(scope="session")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("dataset-cache")


@pytest.fixture()
def ci_spec():
    return ServeSpec.load(CI_SPEC_PATH)


class ServerThread:
    """An :class:`ArrangementServer` on its own event loop in a thread.

    Tests talk to it over real TCP from the main thread (blocking
    :class:`~repro.serve.protocol.ServeClient` or ``run_loadgen``); sending
    the ``shutdown`` op drains the server, after which :meth:`join` returns.
    """

    def __init__(
        self,
        spec,
        state_dir=None,
        resume=True,
        dataset_cache_dir=None,
        event_log_dir=None,
        fault_plan=None,
    ):
        self._ready = threading.Event()
        self._error = None
        self.server = None
        self.address = None
        self._thread = threading.Thread(
            target=self._run,
            args=(spec, state_dir, resume, dataset_cache_dir, event_log_dir, fault_plan),
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise TimeoutError("server thread did not become ready")
        if self._error is not None:
            raise self._error

    def _run(self, spec, state_dir, resume, dataset_cache_dir, event_log_dir, fault_plan):
        async def amain():
            server = ArrangementServer(
                spec,
                state_dir=state_dir,
                resume=resume,
                dataset_cache_dir=dataset_cache_dir,
                event_log_dir=event_log_dir,
                fault_plan=fault_plan,
            )
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 - surfaced to the test
                self._error = error
                self._ready.set()
                raise
            self.server = server
            self.address = server.address
            self._ready.set()
            await server.run_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as error:  # noqa: BLE001 - surfaced via join()
            if self._error is None:
                self._error = error
            self._ready.set()

    def join(self, timeout=120):
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("server thread did not exit")
        if self._error is not None:
            raise self._error


class FrontendThread:
    """A :class:`ShardedFrontend` (worker subprocesses) on its own loop thread.

    The sharded sibling of :class:`ServerThread`: tests talk TCP to
    ``address`` exactly as with a single-process server; a ``shutdown`` op
    fans out to every worker, after which :meth:`join` returns.
    """

    def __init__(
        self,
        spec,
        shards,
        state_dir,
        resume=True,
        dataset_cache_dir=None,
        event_log_dir=None,
        fault_plan_path=None,
    ):
        self._ready = threading.Event()
        self._error = None
        self.frontend = None
        self.address = None
        self._thread = threading.Thread(
            target=self._run,
            args=(spec, shards, state_dir, resume, dataset_cache_dir, event_log_dir, fault_plan_path),
            daemon=True,
        )
        self._thread.start()
        # Worker boots generate datasets and replay warm-up months serially.
        if not self._ready.wait(timeout=600):
            raise TimeoutError("frontend thread did not become ready")
        if self._error is not None:
            raise self._error

    def _run(self, spec, shards, state_dir, resume, dataset_cache_dir, event_log_dir, fault_plan_path):
        async def amain():
            frontend = ShardedFrontend(
                spec,
                shards,
                state_dir=state_dir,
                resume=resume,
                dataset_cache_dir=dataset_cache_dir,
                event_log_dir=event_log_dir,
                fault_plan_path=fault_plan_path,
            )
            try:
                await frontend.start()
            except BaseException as error:  # noqa: BLE001 - surfaced to the test
                self._error = error
                self._ready.set()
                raise
            self.frontend = frontend
            self.address = frontend.address
            self._ready.set()
            await frontend.run_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as error:  # noqa: BLE001 - surfaced via join()
            if self._error is None:
                self._error = error
            self._ready.set()

    def join(self, timeout=300):
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("frontend thread did not exit")
        if self._error is not None:
            raise self._error


def assert_state_dirs_equal(dir_a: Path, dir_b: Path, only=None) -> None:
    """Every checkpoint in both trees is bit-identical modulo timing fields.

    ``only`` restricts the comparison to the named tenants' checkpoints
    (async-trained tenants serve from timing-dependent snapshot staleness,
    so only their sync siblings are held to bitwise equality).
    """

    def keep(name: str) -> bool:
        return only is None or name.split(".")[0] in only

    files_a = sorted(p.name for p in Path(dir_a).glob("*.npz") if keep(p.name))
    files_b = sorted(p.name for p in Path(dir_b).glob("*.npz") if keep(p.name))
    assert files_a == files_b, f"checkpoint sets differ: {files_a} vs {files_b}"
    assert files_a, f"no checkpoints written under {dir_a}"
    for name in files_a:
        with np.load(Path(dir_a) / name, allow_pickle=False) as za, np.load(
            Path(dir_b) / name, allow_pickle=False
        ) as zb:
            assert sorted(za.files) == sorted(zb.files), name
            for key in za.files:
                if key in TIMING_ARRAY_KEYS:
                    continue
                if key == "__json__":
                    ja = json.loads(str(za[key][()]))
                    jb = json.loads(str(zb[key][()]))
                    for field in sorted(set(ja) | set(jb)):
                        if field in TIMING_JSON_KEYS:
                            continue
                        assert ja.get(field) == jb.get(field), f"{name}:{field}"
                    continue
                assert za[key].tobytes() == zb[key].tobytes(), f"{name}:{key}"
