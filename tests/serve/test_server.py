"""In-process server tests: the NDJSON protocol end to end over real TCP.

One module-scoped :class:`ArrangementServer` (the bundled CI spec, two tiny
ddqn-worker tenants) runs on a background thread; tests talk to it with the
blocking :class:`ServeClient`.  The final test drains it and checks the
shutdown summary, so it must stay last in the file.
"""

import socket
import threading

import pytest

from repro.api.registry import registry_payload
from repro.crowd.events import EventType
from repro.serve import ServeClient, ServeSpec, event_to_wire

from tests.serve.conftest import CI_SPEC_PATH, ServerThread


@pytest.fixture(scope="module")
def served(tmp_path_factory, cache_dir):
    spec = ServeSpec.load(CI_SPEC_PATH)
    state_dir = tmp_path_factory.mktemp("serve-state")
    thread = ServerThread(spec, state_dir=state_dir, dataset_cache_dir=cache_dir)
    yield thread
    try:
        with ServeClient(*thread.address) as client:
            client.request({"op": "shutdown"})
    except OSError:
        pass  # already drained by the last test
    thread.join()


@pytest.fixture(scope="module")
def traces(cache_dir):
    """Each tenant's online events, rebuilt exactly as the load generator does."""
    spec = ServeSpec.load(CI_SPEC_PATH)
    out = {}
    for tenant in spec.tenants:
        dataset = tenant.dataset.build(cache_dir=cache_dir)
        _, online = dataset.trace.split_warmup(dataset.warmup_end)
        out[tenant.name] = online.events
    return out


def test_ping(served):
    with ServeClient(*served.address) as client:
        assert client.request({"op": "ping"}) == {"ok": True}


def test_policies_matches_cli_registry(served):
    with ServeClient(*served.address) as client:
        response = client.request({"op": "policies"})
    assert response["ok"]
    assert response["policies"] == registry_payload()
    names = {entry["name"] for entry in response["policies"]["policies"]}
    assert {"random", "linucb", "ddqn-worker"} <= names


def test_status_surface_shape(served):
    with ServeClient(*served.address) as client:
        response = client.request({"op": "status"})
    assert response["ok"]
    status = response["status"]
    assert status["name"] == "serve-ci"
    assert status["closing"] is False
    assert set(status["tenants"]) == {"alpha", "beta"}
    for tenant in status["tenants"].values():
        assert tenant["policy"] == "ddqn-worker"
        assert tenant["error"] is None
        for key in ("events_consumed", "queue_depth", "decisions", "latency_ms", "trainer"):
            assert key in tenant
        assert {"p50_ms", "p90_ms", "p99_ms"} <= set(tenant["latency_ms"])
    assert {"batches", "requests"} <= set(status["batching"])


def test_unknown_op_is_answered_not_fatal(served):
    with ServeClient(*served.address) as client:
        response = client.request({"op": "fly"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]
        # The connection survives a bad request.
        assert client.request({"op": "ping"}) == {"ok": True}


def test_malformed_line_is_answered_not_fatal(served):
    host, port = served.address
    with socket.create_connection((host, port), timeout=30) as sock:
        reader = sock.makefile("rb")
        sock.sendall(b"{this is not json\n")
        line = reader.readline()
        assert b'"ok":false' in line
        assert b"invalid JSON" in line
        sock.sendall(b'{"op":"ping"}\n')
        assert b'"ok":true' in reader.readline()


def test_unknown_tenant_is_error(served):
    with ServeClient(*served.address) as client:
        response = client.request(
            {"op": "event", "tenant": "ghost", "kind": "worker_arrival",
             "subject_id": 1, "timestamp": 0.0}
        )
    assert response["ok"] is False
    assert "unknown tenant" in response["error"]
    assert "alpha" in response["error"]


def test_unknown_event_kind_is_error(served):
    with ServeClient(*served.address) as client:
        response = client.request(
            {"op": "event", "tenant": "alpha", "kind": "meteor",
             "subject_id": 1, "timestamp": 0.0}
        )
    assert response["ok"] is False
    assert "unknown event kind" in response["error"]


def test_event_feed_serves_decisions(served, traces):
    """Feed a prefix of each tenant's trace; arrivals answer with decisions."""
    per_tenant = {}
    with ServeClient(*served.address) as client:
        for name, events in traces.items():
            start = client.request({"op": "status"})["status"]["tenants"][name]
            offset = int(start["events_consumed"])
            arrivals = decisions = 0
            for event in events[offset : offset + 60]:
                response = client.request(event_to_wire(name, event))
                assert response["ok"], response
                if event.event_type is EventType.WORKER_ARRIVAL:
                    arrivals += 1
                    decision = response["decision"]
                    if decision is not None:
                        decisions += 1
                        assert decision["presented"], "decision with empty ranking"
                        assert decision["latency_ms"] >= 0.0
                        assert "quality_gain" in decision
                else:
                    assert "queued" in response
            per_tenant[name] = (offset, arrivals, decisions)
        status = client.request({"op": "status"})["status"]
    for name, (offset, arrivals, decisions) in per_tenant.items():
        tenant = status["tenants"][name]
        assert arrivals > 0 and decisions > 0
        assert tenant["events_consumed"] >= offset + 60 - tenant["queue_depth"]
        assert tenant["decisions"] >= decisions
        assert tenant["latency_ms"]["count"] >= decisions
    # Every decision went through the batcher.
    assert status["batching"]["requests"] >= sum(d for _, _, d in per_tenant.values())


def test_concurrent_connections_are_isolated(served, traces):
    """Two tenants driven from two sockets at once: no cross-talk, no errors."""
    errors = []

    def drive(name):
        try:
            with ServeClient(*served.address) as client:
                offset = int(
                    client.request({"op": "status"})["status"]["tenants"][name][
                        "events_consumed"
                    ]
                )
                for event in traces[name][offset : offset + 20]:
                    response = client.request(event_to_wire(name, event))
                    assert response["ok"], response
                    assert response["tenant"] == name
        except BaseException as error:  # noqa: BLE001 - reported to the test
            errors.append((name, error))

    threads = [threading.Thread(target=drive, args=(name,)) for name in traces]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors


def test_shutdown_drains_and_reports(served):
    """Must run last: drains the module server and checks the summary."""
    with ServeClient(*served.address) as client:
        before = client.request({"op": "status"})["status"]["tenants"]
        response = client.request({"op": "shutdown"})
        assert response["ok"]
        summary = response["shutdown"]
        assert set(summary) == {"alpha", "beta"}
        for name, entry in summary.items():
            assert entry["error"] is None
            assert entry["events_consumed"] >= before[name]["events_consumed"]
            assert entry["checkpoint"] is not None
            # The drain runs each loop to completion, so results exist.
            assert "result" in entry
            assert entry["arrivals"] > 0
        # The server closes the shutdown connection once answered.
        assert client._file.readline() == b""
    served.join()
    # The listener is gone: new connections are refused.
    with pytest.raises(OSError):
        socket.create_connection(served.address, timeout=5)
