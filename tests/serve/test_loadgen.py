"""Load-generator tests: validation, offsets, pacing knobs and the report."""

import pytest

from repro.serve import ServeSpec, run_loadgen
from repro.serve.spec import TenantSpec

from tests.serve.conftest import CI_SPEC_PATH, ServerThread


@pytest.fixture(scope="module")
def served(tmp_path_factory, cache_dir):
    spec = ServeSpec.load(CI_SPEC_PATH)
    thread = ServerThread(
        spec,
        state_dir=tmp_path_factory.mktemp("loadgen-state"),
        dataset_cache_dir=cache_dir,
    )
    yield spec, thread
    from repro.serve import ServeClient

    try:
        with ServeClient(*thread.address) as client:
            client.request({"op": "shutdown"})
    except OSError:
        pass
    thread.join()


def test_unknown_tenant_selection_raises(served, cache_dir):
    spec, thread = served
    with pytest.raises(ValueError, match="no tenants named"):
        run_loadgen(
            spec,
            port=thread.address[1],
            tenant_names=["ghost"],
            dataset_cache_dir=cache_dir,
        )


def test_unhosted_tenant_raises(served, cache_dir, tmp_path):
    """A spec tenant the server does not host fails before any events flow."""
    spec, thread = served
    widened = ServeSpec.from_dict(spec.to_dict())
    extra = TenantSpec.from_dict(
        {"name": "gamma", "policy": {"policy": "random"}}
    )
    widened.tenants.append(extra)
    with pytest.raises(ValueError, match="does not host tenant 'gamma'"):
        run_loadgen(
            widened,
            port=thread.address[1],
            tenant_names=["gamma"],
            dataset_cache_dir=cache_dir,
        )


def test_max_events_and_report_shape(served, cache_dir):
    spec, thread = served
    report = run_loadgen(
        spec,
        port=thread.address[1],
        max_events=30,
        dataset_cache_dir=cache_dir,
    )
    assert set(report["tenants"]) == {"alpha", "beta"}
    for row in report["tenants"].values():
        assert row["events_sent"] == 30
        assert row["errors"] == 0
        assert row["arrivals"] > 0
        assert row["decisions"] > 0
        assert row["rank_rtt_ms"]["count"] == row["arrivals"]
        assert row["rank_rtt_ms"]["p99_ms"] >= row["rank_rtt_ms"]["p50_ms"] > 0
    aggregate = report["aggregate"]
    assert aggregate["tenants"] == 2
    assert aggregate["events_sent"] == 60
    assert aggregate["events_per_s"] > 0
    assert report["server_status"]["tenants"]["alpha"]["decisions"] > 0


def test_second_run_continues_at_server_offset(served, cache_dir):
    """The generator reads each tenant's consumed offset and feeds the tail."""
    spec, thread = served
    before = run_loadgen(
        spec, port=thread.address[1], max_events=0, dataset_cache_dir=cache_dir
    )
    offsets = {name: row["offset"] for name, row in before["tenants"].items()}
    assert all(offset >= 30 for offset in offsets.values()), offsets

    report = run_loadgen(
        spec,
        port=thread.address[1],
        max_events=10,
        tenant_names=["alpha"],
        dataset_cache_dir=cache_dir,
    )
    assert set(report["tenants"]) == {"alpha"}
    assert report["tenants"]["alpha"]["offset"] == offsets["alpha"]
    assert report["tenants"]["alpha"]["events_sent"] == 10
    after = report["server_status"]["tenants"]
    assert after["alpha"]["events_consumed"] >= offsets["alpha"] + 10 - int(
        after["alpha"]["queue_depth"]
    )
    # The untouched tenant did not move.
    assert after["beta"]["events_consumed"] == offsets["beta"]


def test_rate_pacing_caps_throughput(served, cache_dir):
    """--rate spends at least (events-1)/rate seconds per tenant."""
    spec, thread = served
    report = run_loadgen(
        spec,
        port=thread.address[1],
        max_events=8,
        rate=40.0,
        tenant_names=["alpha"],
        dataset_cache_dir=cache_dir,
    )
    row = report["tenants"]["alpha"]
    assert row["events_sent"] == 8
    assert row["elapsed_s"] >= 7 / 40.0
    assert row["events_per_s"] <= 50.0
