"""Process-sharded serving: partitioning, routing, and bit-exact scale-out.

The tentpole guarantee under test: a ``--shards K`` deployment — K worker
processes behind the routing front-end — drains a **byte-identical**
checkpoint tree to a single-process server fed the same events, for sync
and async-trained tenants alike.  Determinism carries because the tenant
partition, checkpoint layout and checkpoint phases all derive from the
spec's global tenant order, and each tenant's trajectory depends only on
its own event sequence.
"""

import json

import pytest

from repro.serve import ServeSpec
from repro.serve.loadgen import run_loadgen
from repro.serve.protocol import ServeClient
from repro.serve.server import checkpoint_phases
from repro.serve.shard import partition_tenants, worker_spec

from tests.serve.conftest import (
    CI_SPEC_PATH,
    FrontendThread,
    ServerThread,
    assert_state_dirs_equal,
)


def _spec_with_tenants(names, port=0, **extra) -> ServeSpec:
    return ServeSpec.from_dict(
        {
            "name": "shard-unit",
            "host": "127.0.0.1",
            "port": port,
            "tenants": [
                {
                    "name": name,
                    "dataset": {"scale": 0.03, "num_months": 2, "seed": index + 1},
                    "runner": {"seed": index, "checkpoint_every": 25},
                    "policy": {"policy": "random", "kwargs": {}},
                }
                for index, name in enumerate(names)
            ],
            **extra,
        }
    )


class TestPartitioning:
    def test_round_robin_by_spec_order(self):
        spec = _spec_with_tenants(["a", "b", "c", "d", "e"])
        groups = partition_tenants(spec, 2)
        assert [[t.name for t in g] for g in groups] == [["a", "c", "e"], ["b", "d"]]

    def test_more_shards_than_tenants_clamps(self):
        spec = _spec_with_tenants(["a", "b"])
        groups = partition_tenants(spec, 8)
        assert [[t.name for t in g] for g in groups] == [["a"], ["b"]]

    def test_single_shard_keeps_everyone(self):
        spec = _spec_with_tenants(["a", "b", "c"])
        (group,) = partition_tenants(spec, 1)
        assert [t.name for t in group] == ["a", "b", "c"]

    def test_invalid_shard_count_raises(self):
        spec = _spec_with_tenants(["a"])
        with pytest.raises(ValueError, match="shards"):
            partition_tenants(spec, 0)

    def test_worker_spec_hosts_its_partition_on_an_ephemeral_port(self):
        spec = _spec_with_tenants(["a", "b", "c"], port=7612)
        sub = worker_spec(spec, 1, 2)
        assert sub.name == "shard-unit-shard1"
        assert sub.port == 0
        assert sub.shards == 1
        assert [t.name for t in sub.tenants] == ["b"]
        # The full spec is untouched.
        assert spec.port == 7612 and len(spec.tenants) == 3

    def test_worker_spec_index_out_of_range(self):
        spec = _spec_with_tenants(["a", "b"])
        with pytest.raises(ValueError, match="out of range"):
            worker_spec(spec, 2, 4)  # only 2 effective shards for 2 tenants

    def test_spec_shards_field_round_trips_and_validates(self):
        spec = _spec_with_tenants(["a"], shards=4)
        assert spec.shards == 4
        assert ServeSpec.from_dict(spec.to_dict()).shards == 4
        with pytest.raises(ValueError, match="shards"):
            ServeSpec.from_dict({**spec.to_dict(), "shards": 0})


class TestCheckpointPhases:
    def test_phases_stagger_across_the_period(self):
        spec = _spec_with_tenants(["a", "b", "c", "d", "e"])
        phases = checkpoint_phases(spec)
        assert phases == {"a": 0, "b": 5, "c": 10, "d": 15, "e": 20}

    def test_workers_inherit_global_phases_not_subset_phases(self):
        """The stagger a shard worker must apply is the *global* one.

        Recomputing phases from a worker's tenant subset would re-pack them
        (breaking bit-exactness with single-process state); the front-end
        therefore passes ``checkpoint_phases(full_spec)`` down.
        """
        spec = _spec_with_tenants(["a", "b", "c", "d"])
        global_phases = checkpoint_phases(spec)
        sub = worker_spec(spec, 1, 2)  # hosts b, d
        subset_phases = checkpoint_phases(sub)
        assert {n: global_phases[n] for n in ("b", "d")} != subset_phases


class TestShardedExactness:
    """K=2 process-sharded serve ≡ single-process serve, byte for byte.

    Sync-trained tenants are held to bitwise checkpoint equality; the
    async-trained tenant serves decisions from its trainer's published
    snapshot, whose staleness is wall-clock-dependent (true of *any*
    deployment shape — two single-process runs differ the same way), so it
    is held to semantic equality: same trace window consumed, clean drain.
    """

    @pytest.fixture(scope="class")
    def mixed_spec(self):
        """Two sync ddqn tenants + one async-trained tenant."""
        data = json.loads(CI_SPEC_PATH.read_text())
        data["name"] = "shard-exact"
        gamma = json.loads(json.dumps(data["tenants"][0]))
        gamma["name"] = "gamma"
        gamma["dataset"]["seed"] = 3
        gamma["runner"]["seed"] = 2
        gamma["policy"]["kwargs"]["async_training"] = True
        data["tenants"].append(gamma)
        return ServeSpec.from_dict(data)

    def test_two_shard_drain_matches_single_process(self, mixed_spec, cache_dir, tmp_path):
        events = 120

        single_dir = tmp_path / "single"
        server = ServerThread(
            mixed_spec, state_dir=single_dir, resume=False, dataset_cache_dir=cache_dir
        )
        run_loadgen(
            mixed_spec,
            port=server.address[1],
            max_events=events,
            dataset_cache_dir=cache_dir,
            shutdown=True,
        )
        server.join()

        sharded_dir = tmp_path / "sharded"
        frontend = FrontendThread(
            mixed_spec, 2, state_dir=sharded_dir, resume=False, dataset_cache_dir=cache_dir
        )
        status = ServeClient(*frontend.address).request({"op": "status"})["status"]
        # The front-end advertises the routing table and per-shard health.
        assert status["frontend"] and status["shard_count"] == 2
        assert {route["shard"] for route in status["routes"].values()} == {0, 1}
        assert set(status["tenants"]) == {"alpha", "beta", "gamma"}
        report = run_loadgen(
            mixed_spec,
            port=frontend.address[1],
            max_events=events,
            dataset_cache_dir=cache_dir,
            shutdown=True,
        )
        frontend.join()

        # Both deployments consumed the same trace windows...
        for entry in report["shutdown"].values():
            assert entry["events_consumed"] == events
            assert entry["error"] is None
        # ...the sync tenants drained byte-identical checkpoints (modulo
        # wall-clock keys)...
        assert_state_dirs_equal(single_dir, sharded_dir, only={"alpha", "beta"})
        # ...and the async tenant checkpointed on both sides.
        assert (single_dir / "gamma.npz").exists()
        assert (sharded_dir / "gamma.npz").exists()
