"""``.json`` figure documents and checked-in ``.txt`` renders are one value.

Every benchmark writes a structured :class:`FigureDocument` next to its
monospaced render (``benchmarks/conftest.write_result``).  Ingesting the
document into the store and rendering it back must reproduce the ``.txt``
byte-for-byte — that equality is what makes the store a faithful, queryable
twin of the paper's tables.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import MetricsStore, render_document
from repro.obs.ingest import ingest_figure_document, list_figures, load_figure_document

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

FIGURE_DOCUMENTS = sorted(RESULTS_DIR.glob("*.json"))


def test_benchmark_results_include_figure_documents():
    """The structured twins are checked in alongside the rendered tables."""
    names = {path.stem for path in FIGURE_DOCUMENTS}
    assert {
        "fig7_worker_benefit",
        "fig8_requester_benefit",
        "fig9_balance",
        "fig10ab_arrival_density",
        "fig10c_quality_noise",
        "fig10d_scalability",
        "table1_efficiency",
    } <= names


@pytest.mark.parametrize("path", FIGURE_DOCUMENTS, ids=lambda path: path.stem)
def test_store_round_trip_reproduces_checked_in_render(path):
    rendered_txt = path.with_suffix(".txt").read_text()
    with MetricsStore() as store:
        ingest_figure_document(store, path)
        document = load_figure_document(store, path.stem)
    assert render_document(document) + "\n" == rendered_txt


def test_report_tables_cli_reproduces_the_results_directory(tmp_path):
    """``python -m repro report tables`` over the results dir prints every render."""
    if not FIGURE_DOCUMENTS:
        pytest.skip("no figure documents present")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "report", "tables", str(RESULTS_DIR)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for path in FIGURE_DOCUMENTS:
        assert path.with_suffix(".txt").read_text().rstrip("\n") in completed.stdout


def test_figures_survive_a_persistent_store(tmp_path):
    """Ingest into a file-backed store, reopen, render — still byte-exact."""
    if not FIGURE_DOCUMENTS:
        pytest.skip("no figure documents present")
    path = FIGURE_DOCUMENTS[0]
    db = tmp_path / "obs.sqlite"
    with MetricsStore(db) as store:
        ingest_figure_document(store, path)
    with MetricsStore(db) as store:
        assert list_figures(store) == [path.stem]
        document = load_figure_document(store, path.stem)
    assert render_document(document) + "\n" == path.with_suffix(".txt").read_text()


def test_latest_ingest_wins(tmp_path):
    """Re-ingesting a figure shadows the earlier rows (newest ingest is read)."""
    if not FIGURE_DOCUMENTS:
        pytest.skip("no figure documents present")
    path = FIGURE_DOCUMENTS[0]
    payload = json.loads(path.read_text())
    edited = tmp_path / path.name
    payload["sections"][0]["rows"][0]["values"][0] = 123.456
    edited.write_text(json.dumps(payload))
    with MetricsStore() as store:
        ingest_figure_document(store, path)
        ingest_figure_document(store, edited)
        document = load_figure_document(store, path.stem)
    assert document.sections[0].rows[0][1][0] == 123.456
