"""Ingesters: artefact files land as rows, deterministically."""

import json
import math
from pathlib import Path

import pytest

from repro.obs import MetricsStore
from repro.obs.figures import FigureDocument, series_section
from repro.obs.ingest import (
    ingest_bench_report,
    ingest_figure_document,
    ingest_path,
    ingest_run_results,
    ingest_serve_events,
    load_figure_document,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_ENGINE = REPO_ROOT / "benchmarks" / "perf" / "BENCH_engine.json"


def run_document() -> dict:
    """A tiny ``repro run --output`` document, drift records included."""
    payload = {
        "policy_name": "DDQN",
        "arrivals": 40,
        "completions": 25,
        "CR": 0.625,
        "kCR": 0.7,
        "nDCG-CR": 0.8,
        "QG": 3.5,
        "kQG": 4.0,
        "nDCG-QG": 4.5,
        "monthly": {"CR": [0.5, 0.625], "QG": [2.0, 3.5]},
        "mean_update_seconds": 0.001,
        "mean_decision_seconds": 0.002,
        "mean_retrain_seconds": float("nan"),
        "drift": [
            {"arrivals": 20, "dtype": "float32", "tasks": 5, "max_abs": 1e-6, "max_rel": 2e-7},
            {"arrivals": 40, "dtype": "float32", "tasks": 4, "max_abs": 3e-6, "max_rel": 5e-7},
        ],
    }
    return {"spec": {"name": "tiny"}, "results": {"DDQN": payload}}


@pytest.fixture()
def run_path(tmp_path):
    path = tmp_path / "results.json"
    path.write_text(json.dumps(run_document()))
    return path


def test_run_results_round_trip(run_path):
    with MetricsStore() as store:
        summary = ingest_run_results(store, run_path, label="ci")
        assert summary["kind"] == "run"
        assert summary["results"] == 1

        _, rows = store.query(
            "SELECT name, label, policy, arrivals, completions, cr, ndcg_qg, "
            "mean_retrain_seconds FROM results"
        )
        assert rows == [("tiny", "DDQN", "DDQN", 40, 25, 0.625, 4.5, None)]

        _, monthly = store.query(
            "SELECT measure, month, value FROM monthly ORDER BY measure, month"
        )
        assert monthly == [("CR", 0, 0.5), ("CR", 1, 0.625), ("QG", 0, 2.0), ("QG", 1, 3.5)]

        _, drift = store.query(
            "SELECT policy, arrivals, dtype, tasks, max_abs, max_rel FROM drift ORDER BY arrivals"
        )
        assert drift == [
            ("DDQN", 20, "float32", 5, 1e-6, 2e-7),
            ("DDQN", 40, "float32", 4, 3e-6, 5e-7),
        ]


def test_ingest_is_deterministic_across_fresh_stores(run_path):
    def build() -> str:
        with MetricsStore() as store:
            ingest_run_results(store, run_path, label="ci")
            ingest_bench_report(store, BENCH_ENGINE, label="baseline")
            return store.dump()

    assert build() == build()


def test_bench_report_flattens_numeric_leaves_only():
    with MetricsStore() as store:
        summary = ingest_bench_report(store, BENCH_ENGINE, label="baseline")
        assert summary["metrics"] > 0
        _, rows = store.query("SELECT path, value FROM bench_metrics ORDER BY rowid")
        paths = [row[0] for row in rows]
        # The environment block is machine description, not a metric.
        assert not any(path.startswith("environment") for path in paths)
        assert any(path.startswith("results.") for path in paths)
        assert all(isinstance(row[1], float) for row in rows)
        _, reports = store.query("SELECT benchmark, source FROM bench_reports")
        assert reports == [("batched tensor engine", "BENCH_engine.json")]


def test_serve_events_ingest_from_directory(tmp_path):
    log_dir = tmp_path / "events"
    log_dir.mkdir()
    for tenant, count in (("alpha", 3), ("beta", 2)):
        lines = [
            json.dumps(
                {
                    "tenant": tenant,
                    "seq": seq + 1,
                    "events_consumed": seq + 1,
                    "queue_depth": 0,
                    "latency_ms": 1.5,
                    "completed": seq % 2 == 0,
                    "quality_gain": 0.25,
                    "trainer": {"mode": "sync"},
                }
            )
            for seq in range(count)
        ]
        (log_dir / f"{tenant}.ndjson").write_text("\n".join(lines) + "\n")

    with MetricsStore() as store:
        summary = ingest_serve_events(store, log_dir, label="ci")
        assert summary == {
            "kind": "serve-events",
            "ingest_id": 1,
            "events": 5,
            "faults": 0,
            "files": 2,
        }
        _, rows = store.query(
            "SELECT tenant, COUNT(*), MAX(seq) FROM serve_events GROUP BY tenant ORDER BY tenant"
        )
        assert rows == [("alpha", 3, 3), ("beta", 2, 2)]
        _, trainer = store.query("SELECT DISTINCT trainer FROM serve_events")
        assert trainer == [('{"mode": "sync"}',)]


def test_figure_document_nan_round_trips_through_null(tmp_path):
    document = FigureDocument(
        figure="demo",
        sections=[
            series_section("demo", (1, 2), {"DDQN": [0.5, float("nan")]}, x_label="x")
        ],
    )
    path = tmp_path / "demo.json"
    path.write_text(json.dumps(document.to_payload()))
    with MetricsStore() as store:
        ingest_figure_document(store, path)
        # NaN is stored as an explicit NULL, not a sqlite accident.
        _, cells = store.query("SELECT value FROM figure_cells ORDER BY col_index")
        assert cells == [(0.5,), (None,)]
        loaded = load_figure_document(store, "demo")
    values = loaded.sections[0].rows[0][1]
    assert values[0] == 0.5 and math.isnan(values[1])


def test_ingest_path_autodetects_mixed_directory(tmp_path, run_path):
    mixed = tmp_path / "mixed"
    mixed.mkdir()
    (mixed / "run.json").write_text(run_path.read_text())
    (mixed / "bench.json").write_text(BENCH_ENGINE.read_text())
    document = FigureDocument(
        figure="demo", sections=[series_section(None, (1,), {"A": [1.0]}, x_label="x")]
    )
    (mixed / "figure.json").write_text(json.dumps(document.to_payload()))
    (mixed / "alpha.ndjson").write_text(
        json.dumps({"tenant": "alpha", "seq": 1}) + "\n"
    )

    with MetricsStore() as store:
        summaries = ingest_path(store, mixed)
    kinds = sorted(summary["kind"] for summary in summaries)
    assert kinds == ["bench", "figure", "run", "serve-events"]


def test_ingest_path_rejects_unrecognised_file(tmp_path):
    stray = tmp_path / "stray.json"
    stray.write_text(json.dumps({"hello": "world"}))
    with MetricsStore() as store:
        with pytest.raises(ValueError, match="not a recognised artefact"):
            ingest_path(store, stray)
