"""Unified CLI dispatch + the ``repro report`` subcommands, end to end.

Everything runs the real subprocess, so what is asserted here is exactly
what a user typing ``python -m repro …`` gets: one argparse tree whose
``--help`` lists every subcommand (serve and loadgen included), proper exit
codes for bare invocations, and the report pipeline from artefact files to
SQL facts — the float32 drift guard among them.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

SUBCOMMANDS = ("run", "compare", "sweep", "policies", "bench", "serve", "loadgen", "report")


def run_cli(*args: str, timeout: int = 600) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


# --------------------------------------------------------------------- #
# Dispatch: one argparse tree for every subcommand
# --------------------------------------------------------------------- #
def test_top_level_help_lists_every_subcommand():
    completed = run_cli("--help")
    assert completed.returncode == 0, completed.stderr
    for subcommand in SUBCOMMANDS:
        assert subcommand in completed.stdout, subcommand


def test_bare_invocation_is_a_usage_error():
    completed = run_cli()
    assert completed.returncode == 2
    assert "usage" in completed.stderr.lower()
    for subcommand in ("serve", "loadgen", "report"):
        assert subcommand in completed.stderr


@pytest.mark.parametrize("subcommand", ["serve", "loadgen", "report"])
def test_subcommand_help_forwards(subcommand):
    completed = run_cli(subcommand, "--help")
    assert completed.returncode == 0, completed.stderr
    assert f"repro {subcommand}" in completed.stdout


def test_report_help_lists_its_subcommands():
    completed = run_cli("report", "--help")
    assert completed.returncode == 0, completed.stderr
    for name in ("ingest", "sql", "tables", "bench-history"):
        assert name in completed.stdout


# --------------------------------------------------------------------- #
# The float32 drift guard as queryable facts
# --------------------------------------------------------------------- #
DRIFT_SPEC = {
    "name": "drift-ci",
    "dataset": {"scale": 0.03, "num_months": 2, "seed": 1},
    "runner": {"seed": 0, "max_arrivals": 40, "drift_every": 10},
    "policies": [
        {
            "policy": "ddqn-worker",
            "kwargs": {
                "hidden_dim": 16,
                "num_heads": 2,
                "batch_size": 8,
                "train_interval": 4,
                "seed": 0,
                "dtype": "float32",
            },
        }
    ],
}


def test_drift_probe_lands_in_the_store_and_stays_bounded(tmp_path):
    spec_path = tmp_path / "drift_spec.json"
    spec_path.write_text(json.dumps(DRIFT_SPEC))
    output = tmp_path / "results.json"
    db = tmp_path / "obs.sqlite"

    completed = run_cli("run", str(spec_path), "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    document = json.loads(output.read_text())
    (row,) = document["results"].values()
    assert [record["arrivals"] for record in row["drift"]] == [10, 20, 30, 40]
    assert all(record["dtype"] == "float32" for record in row["drift"])

    ingest = run_cli("report", "ingest", str(db), str(output), "--label", "ci")
    assert ingest.returncode == 0, ingest.stderr

    # The satellite's acceptance query: float32 inference never drifts far
    # from the float64 mirror over the served run.
    query = run_cli(
        "report",
        "sql",
        str(db),
        "SELECT COUNT(*) AS probes, MAX(max_rel) AS worst FROM drift",
        "--json",
    )
    assert query.returncode == 0, query.stderr
    (facts,) = json.loads(query.stdout)
    assert facts["probes"] == 4
    assert 0.0 <= facts["worst"] < 1e-3


def test_drift_probe_off_by_default(tmp_path):
    spec = dict(DRIFT_SPEC, runner={"seed": 0, "max_arrivals": 10})
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    output = tmp_path / "results.json"
    completed = run_cli("run", str(spec_path), "--output", str(output))
    assert completed.returncode == 0, completed.stderr
    (row,) = json.loads(output.read_text())["results"].values()
    assert "drift" not in row


# --------------------------------------------------------------------- #
# bench-history: perf regressions as one query
# --------------------------------------------------------------------- #
def bench_payload(events_per_s: float) -> dict:
    return {
        "benchmark": "serving layer",
        "mode": "quick",
        "serve_ci": {"events_per_s": events_per_s, "rank_p99_ms": 4.0},
    }


def test_bench_history_passes_and_fails_on_a_drop(tmp_path):
    db = tmp_path / "obs.sqlite"
    good = tmp_path / "BENCH_good.json"
    bad = tmp_path / "BENCH_bad.json"
    good.write_text(json.dumps(bench_payload(200.0)))
    bad.write_text(json.dumps(bench_payload(100.0)))

    assert run_cli("report", "ingest", str(db), str(good), "--label", "baseline").returncode == 0
    assert run_cli("report", "ingest", str(db), str(good), "--label", "current").returncode == 0
    steady = run_cli("report", "bench-history", str(db), "--check")
    assert steady.returncode == 0, steady.stderr
    assert "events_per_s" in steady.stdout

    assert run_cli("report", "ingest", str(db), str(bad), "--label", "current").returncode == 0
    dropped = run_cli("report", "bench-history", str(db), "--check", "--max-drop", "0.25")
    assert dropped.returncode == 1
    assert "REGRESSION" in dropped.stderr

    # The latest ingest under a label wins; tolerant thresholds still pass.
    lenient = run_cli("report", "bench-history", str(db), "--check", "--max-drop", "0.6")
    assert lenient.returncode == 0, lenient.stderr


def test_bench_history_missing_label_is_an_error(tmp_path):
    db = tmp_path / "obs.sqlite"
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps(bench_payload(200.0)))
    assert run_cli("report", "ingest", str(db), str(good), "--label", "baseline").returncode == 0
    completed = run_cli("report", "bench-history", str(db), "--check")
    assert completed.returncode == 2
    assert "current" in completed.stderr


# --------------------------------------------------------------------- #
# sweep --store: run a grid and land it in the store in one command
# --------------------------------------------------------------------- #
STORE_SWEEP = {
    "name": "store-sweep",
    "base": {
        "name": "store-sweep-cell",
        "dataset": {"scale": 0.03, "num_months": 2, "seed": 1},
        "runner": {"seed": 0, "max_arrivals": 20},
        "policies": [{"policy": "random", "kwargs": {"seed": 0}}],
    },
    "axes": [{"target": "dataset", "key": "seed", "values": [1, 2]}],
    "replicate_axis": "dataset.seed",
}


def test_sweep_run_with_store_ingests_the_cells(tmp_path):
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(json.dumps(STORE_SWEEP))
    sweep_dir = tmp_path / "sweep"
    db = tmp_path / "obs.sqlite"

    completed = run_cli(
        "sweep", "run", str(spec_path), "--dir", str(sweep_dir), "--store", str(db)
    )
    assert completed.returncode == 0, completed.stderr
    assert "ingested 2 cells" in completed.stdout

    query = run_cli(
        "report",
        "sql",
        str(db),
        "SELECT name, COUNT(*) AS cells FROM results GROUP BY name",
        "--json",
    )
    assert query.returncode == 0, query.stderr
    (facts,) = json.loads(query.stdout)
    assert facts == {"name": "store-sweep", "cells": 2}

    # The same directory renders as per-measure series tables.
    tables = run_cli("report", "tables", str(sweep_dir))
    assert tables.returncode == 0, tables.stderr
    assert "mean CR per group" in tables.stdout
