"""Schema lifecycle of the metrics store: creation, migration, versioning."""

import sqlite3

import pytest

from repro.obs.store import _SCHEMA_MIGRATIONS, SCHEMA_VERSION, MetricsStore


def table_names(store: MetricsStore) -> set:
    _, rows = store.query("SELECT name FROM sqlite_master WHERE type = 'table'")
    return {row[0] for row in rows}


def test_fresh_store_is_at_current_version():
    with MetricsStore() as store:
        assert store.schema_version == SCHEMA_VERSION
        assert {
            "schema_migrations",
            "ingests",
            "results",
            "monthly",
            "bench_reports",
            "bench_metrics",
            "figures",
            "figure_cells",
            "serve_events",
            "drift",
        } <= table_names(store)


def test_every_migration_step_is_recorded():
    with MetricsStore() as store:
        _, rows = store.query("SELECT version, description FROM schema_migrations ORDER BY version")
    assert [row[0] for row in rows] == sorted(_SCHEMA_MIGRATIONS)
    assert [row[1] for row in rows] == [
        _SCHEMA_MIGRATIONS[version][0] for version in sorted(_SCHEMA_MIGRATIONS)
    ]


def make_v1_store(path) -> None:
    """Write a version-1 store by hand, as an older build would have."""
    conn = sqlite3.connect(path)
    conn.execute(
        "CREATE TABLE schema_migrations (version INTEGER PRIMARY KEY, description TEXT NOT NULL)"
    )
    description, statements = _SCHEMA_MIGRATIONS[1]
    for statement in statements:
        conn.execute(statement)
    conn.execute(
        "INSERT INTO schema_migrations (version, description) VALUES (?, ?)", (1, description)
    )
    conn.execute(
        "INSERT INTO ingests (kind, source, label) VALUES ('run', 'old.json', 'legacy')"
    )
    conn.commit()
    conn.close()


def test_v1_store_migrates_in_place_and_keeps_rows(tmp_path):
    path = tmp_path / "old.sqlite"
    make_v1_store(path)
    with MetricsStore(path) as store:
        assert store.schema_version == SCHEMA_VERSION
        assert {"serve_events", "drift"} <= table_names(store)
        # Pre-migration rows survive untouched.
        _, rows = store.query("SELECT kind, source, label FROM ingests")
        assert rows == [("run", "old.json", "legacy")]
        # The migration steps were recorded, not just applied.
        _, versions = store.query("SELECT version FROM schema_migrations ORDER BY version")
        assert [row[0] for row in versions] == sorted(_SCHEMA_MIGRATIONS)


def test_reopening_a_migrated_store_is_idempotent(tmp_path):
    path = tmp_path / "store.sqlite"
    MetricsStore(path).close()
    with MetricsStore(path) as store:
        _, rows = store.query("SELECT COUNT(*) FROM schema_migrations")
    assert rows[0][0] == len(_SCHEMA_MIGRATIONS)


def test_store_from_a_newer_build_is_rejected(tmp_path):
    path = tmp_path / "future.sqlite"
    store = MetricsStore(path)
    store.execute(
        "INSERT INTO schema_migrations (version, description) VALUES (?, 'from the future')",
        (SCHEMA_VERSION + 1,),
    )
    store.close()
    with pytest.raises(ValueError, match="newer|version"):
        MetricsStore(path)


def test_dump_is_identical_for_identical_operations():
    def build() -> str:
        with MetricsStore() as store:
            ingest_id = store.begin_ingest("bench", "BENCH_x.json", "baseline")
            store.execute(
                "INSERT INTO bench_reports (ingest_id, benchmark, mode, source) "
                "VALUES (?, 'x', 'quick', 'BENCH_x.json')",
                (ingest_id,),
            )
            store.commit()
            return store.dump()

    assert build() == build()


def make_v3_store(path) -> None:
    """Write a version-3 store by hand, as the pre-sharding build would have."""
    conn = sqlite3.connect(path)
    conn.execute(
        "CREATE TABLE schema_migrations (version INTEGER PRIMARY KEY, description TEXT NOT NULL)"
    )
    for version in (1, 2, 3):
        description, statements = _SCHEMA_MIGRATIONS[version]
        for statement in statements:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO schema_migrations (version, description) VALUES (?, ?)",
            (version, description),
        )
    conn.execute("INSERT INTO ingests (kind, source, label) VALUES ('serve-events', 'logs', '')")
    conn.execute(
        "INSERT INTO serve_events (ingest_id, tenant, seq, latency_ms) VALUES (1, 'alpha', 1, 2.5)"
    )
    conn.execute(
        "INSERT INTO faults (ingest_id, tenant, kind, reason) VALUES (1, 'alpha', 'health', 'boot')"
    )
    conn.commit()
    conn.close()


def test_v3_store_gains_shard_column_and_keeps_rows(tmp_path):
    """v3 → v4: serving tables gain ``shard``; pre-sharding rows read NULL."""
    path = tmp_path / "v3.sqlite"
    make_v3_store(path)
    with MetricsStore(path) as store:
        assert store.schema_version == SCHEMA_VERSION
        # Old rows survive with shard = NULL (single-process deployments).
        _, rows = store.query("SELECT tenant, seq, shard FROM serve_events")
        assert rows == [("alpha", 1, None)]
        _, rows = store.query("SELECT tenant, kind, shard FROM faults")
        assert rows == [("alpha", "health", None)]
        # New rows can carry their shard index.
        store.execute(
            "INSERT INTO serve_events (ingest_id, tenant, seq, shard) VALUES (1, 'beta', 1, 1)"
        )
        _, rows = store.query(
            "SELECT tenant, shard FROM serve_events WHERE shard IS NOT NULL"
        )
        assert rows == [("beta", 1)]
