"""Serving event log: real server + loadgen round trip into the store.

Boots the bundled two-tenant CI spec with ``--event-log`` semantics (the
``event_log_dir`` server argument), replays part of each tenant's trace
through the load generator, and checks that (a) every served arrival became
one NDJSON record, (b) the records ingest into ``serve_events`` rows that
match the server's own accounting, and (c) the checkpoint writes went
through the per-tenant offload worker, not the event-loop thread.
"""

import json
from pathlib import Path

import pytest

from repro.obs import MetricsStore
from repro.obs.ingest import ingest_serve_events
from repro.serve import ServeSpec, run_loadgen

from tests.serve.conftest import CI_SPEC_PATH, ServerThread

MAX_EVENTS = 60  # past both tenants' checkpoint_every=25, so offload writes happen


@pytest.fixture(scope="module")
def served_round_trip(tmp_path_factory):
    """One served life with event logging on; returns its artefacts."""
    root = tmp_path_factory.mktemp("serve-events")
    cache_dir = root / "cache"
    event_dir = root / "events"
    spec = ServeSpec.load(CI_SPEC_PATH)
    thread = ServerThread(
        spec,
        state_dir=root / "state",
        dataset_cache_dir=cache_dir,
        event_log_dir=event_dir,
    )
    report = run_loadgen(
        spec,
        port=thread.address[1],
        dataset_cache_dir=cache_dir,
        max_events=MAX_EVENTS,
        shutdown=True,
    )
    thread.join()
    return {"spec": spec, "event_dir": event_dir, "report": report}


def test_one_record_per_served_arrival(served_round_trip):
    event_dir = served_round_trip["event_dir"]
    report = served_round_trip["report"]
    logs = sorted(path.name for path in event_dir.glob("*.ndjson"))
    assert logs == ["alpha.ndjson", "beta.ndjson"]
    for name in ("alpha", "beta"):
        assert report["tenants"][name]["events_sent"] == MAX_EVENTS
        lines = (event_dir / f"{name}.ndjson").read_text().splitlines()
        # One record per decision (worker arrival), not per raw trace event.
        decisions = report["tenants"][name]["decisions"]
        assert decisions > 0
        assert len(lines) == decisions
        records = [json.loads(line) for line in lines]
        assert [record["seq"] for record in records] == list(range(1, decisions + 1))
        assert all(record["tenant"] == name for record in records)
        assert all(record["latency_ms"] >= 0.0 for record in records)
        # The async trainer stats ride along on every record.
        assert all(record["trainer"] is not None for record in records)


def test_event_log_ingests_and_matches_server_accounting(served_round_trip):
    event_dir = served_round_trip["event_dir"]
    report = served_round_trip["report"]
    total_decisions = sum(report["tenants"][name]["decisions"] for name in ("alpha", "beta"))
    with MetricsStore() as store:
        summary = ingest_serve_events(store, event_dir, label="ci")
        assert summary["events"] == total_decisions
        assert summary["files"] == 2
        _, rows = store.query(
            "SELECT tenant, COUNT(*), MAX(seq), MAX(events_consumed) "
            "FROM serve_events GROUP BY tenant ORDER BY tenant"
        )
    for (tenant, count, max_seq, max_consumed), name in zip(rows, ("alpha", "beta")):
        assert tenant == name
        assert count == max_seq == report["tenants"][name]["decisions"]
        server_consumed = report["server_status"]["tenants"][name]["events_consumed"]
        assert 0 < max_consumed <= server_consumed == MAX_EVENTS


def test_checkpoints_went_through_the_offload_worker(served_round_trip):
    status = served_round_trip["report"]["server_status"]["tenants"]
    for name in ("alpha", "beta"):
        offload = status[name]["checkpoint_offload"]
        # checkpoint_every=25 with 60 events: periodic saves happened, and
        # each wrote its policy tree + run state through the worker.
        assert offload["writes"] >= 2
        assert status[name]["event_log"].endswith(f"{name}.ndjson")


def test_event_log_directory_is_optional(tmp_path):
    """Without ``event_log_dir`` nothing is written and status reports None."""
    cache_dir = tmp_path / "cache"
    spec = ServeSpec.load(CI_SPEC_PATH)
    thread = ServerThread(spec, dataset_cache_dir=cache_dir)
    report = run_loadgen(
        spec, port=thread.address[1], dataset_cache_dir=cache_dir, max_events=5, shutdown=True
    )
    thread.join()
    for name in ("alpha", "beta"):
        tenant = report["server_status"]["tenants"][name]
        assert tenant["event_log"] is None
        assert tenant["checkpoint_offload"]["pending"] == 0
